#include "codelet/graph.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace c64fft::codelet {

std::uint32_t CodeletGraph::add_node(CodeletKey key) {
  auto [it, inserted] = ids_.try_emplace(key, static_cast<std::uint32_t>(keys_.size()));
  if (inserted) {
    keys_.push_back(key);
    succ_.emplace_back();
    pred_.emplace_back();
  }
  return it->second;
}

void CodeletGraph::add_edge(CodeletKey producer, CodeletKey consumer) {
  const std::uint32_t p = add_node(producer);
  const std::uint32_t c = add_node(consumer);
  succ_[p].push_back(c);
  pred_[c].push_back(p);
  ++edges_;
}

std::uint32_t CodeletGraph::id_of(CodeletKey key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) throw std::out_of_range("CodeletGraph: unknown node");
  return it->second;
}

std::uint32_t CodeletGraph::in_degree(CodeletKey key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) throw std::out_of_range("CodeletGraph: unknown node");
  return static_cast<std::uint32_t>(pred_[it->second].size());
}

std::vector<CodeletKey> CodeletGraph::children(CodeletKey key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) throw std::out_of_range("CodeletGraph: unknown node");
  std::vector<CodeletKey> out;
  out.reserve(succ_[it->second].size());
  for (auto id : succ_[it->second]) out.push_back(keys_[id]);
  return out;
}

std::vector<CodeletKey> CodeletGraph::parents(CodeletKey key) const {
  const auto it = ids_.find(key);
  if (it == ids_.end()) throw std::out_of_range("CodeletGraph: unknown node");
  std::vector<CodeletKey> out;
  out.reserve(pred_[it->second].size());
  for (auto id : pred_[it->second]) out.push_back(keys_[id]);
  return out;
}

bool CodeletGraph::is_well_behaved() const {
  try {
    (void)topological_order();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

std::vector<CodeletKey> CodeletGraph::topological_order() const {
  std::vector<std::uint32_t> indeg(keys_.size());
  for (std::uint32_t n = 0; n < keys_.size(); ++n)
    indeg[n] = static_cast<std::uint32_t>(pred_[n].size());
  std::deque<std::uint32_t> ready;
  for (std::uint32_t n = 0; n < keys_.size(); ++n)
    if (indeg[n] == 0) ready.push_back(n);

  std::vector<CodeletKey> order;
  order.reserve(keys_.size());
  while (!ready.empty()) {
    const std::uint32_t n = ready.front();
    ready.pop_front();
    order.push_back(keys_[n]);
    for (auto c : succ_[n])
      if (--indeg[c] == 0) ready.push_back(c);
  }
  if (order.size() != keys_.size())
    throw std::logic_error("CodeletGraph: cycle detected (not well-behaved)");
  return order;
}

std::vector<CodeletKey> CodeletGraph::simulate_firing(PoolPolicy policy) const {
  std::vector<std::uint32_t> tokens(keys_.size());
  for (std::uint32_t n = 0; n < keys_.size(); ++n)
    tokens[n] = static_cast<std::uint32_t>(pred_[n].size());

  std::deque<std::uint32_t> pool;
  for (std::uint32_t n = 0; n < keys_.size(); ++n)
    if (tokens[n] == 0) pool.push_back(n);

  std::vector<CodeletKey> fired;
  fired.reserve(keys_.size());
  while (!pool.empty()) {
    std::uint32_t n;
    if (policy == PoolPolicy::kLifo) {
      n = pool.back();
      pool.pop_back();
    } else {
      n = pool.front();
      pool.pop_front();
    }
    fired.push_back(keys_[n]);
    for (auto c : succ_[n])
      if (--tokens[c] == 0) pool.push_back(c);
  }
  if (fired.size() != keys_.size())
    throw std::logic_error("CodeletGraph: some codelets never fired");
  return fired;
}

}  // namespace c64fft::codelet
