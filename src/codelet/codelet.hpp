#pragma once
// Core codelet-model vocabulary (Section III-C of the paper).
//
// A codelet is a non-preemptive unit of work identified here by a
// (stage, index) pair. Its firing rule is dataflow-like: it becomes ready
// when its dependency counter reaches the expected number of completed
// producers. Ready codelets sit in a shared pool from which worker threads
// (or simulated thread units) pop work; the pop order is *free*, which is
// exactly the degree of freedom the paper exploits to balance memory-bank
// load.

#include <cstdint>
#include <functional>

namespace c64fft::codelet {

struct CodeletKey {
  std::uint32_t stage = 0;
  std::uint64_t index = 0;

  friend bool operator==(const CodeletKey&, const CodeletKey&) = default;
  friend auto operator<=>(const CodeletKey&, const CodeletKey&) = default;
};

struct CodeletKeyHash {
  std::size_t operator()(const CodeletKey& k) const noexcept {
    // SplitMix-style mix of the two fields.
    std::uint64_t z = (static_cast<std::uint64_t>(k.stage) << 48) ^ k.index;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

/// Pop-order policy of a ready-codelet pool. The paper's "fine best" and
/// "fine worst" are realised by the combination of the initial seed order
/// and this policy (see fft::PoolOrder).
enum class PoolPolicy {
  kLifo,  ///< stack: newly enabled codelets run first (depth-first-ish)
  kFifo,  ///< queue: enabling order preserved (breadth-first-ish)
};

/// How the host runtime schedules ready codelets.
///
/// kWorkStealing: per-worker Chase-Lev deques (owner LIFO pop, thief FIFO
/// steal) plus a global injection queue holding the phase seeds in
/// PoolPolicy order. Dynamically enabled codelets go to the enabling
/// worker's own deque, so the hot push/pop path is lock-free; the pop
/// order across workers is free — exactly the freedom the paper's
/// fine-grain model grants (and the static race check proves safe).
///
/// kSequential: the paper-order compatibility mode. Every codelet runs on
/// the calling thread, popped from one pool in strict PoolPolicy order, so
/// the "fine best"/"fine worst" seed-order experiments reproduce the exact
/// execution sequence the single mutex-pool runtime gave.
enum class SchedulerMode {
  kWorkStealing,
  kSequential,
};

}  // namespace c64fft::codelet
