#pragma once
// Concurrent ready-codelet pool used by the host runtime. A mutex-guarded
// deque with LIFO/FIFO pop policies; correctness (not raw throughput) is
// what the host runtime is for — timing studies run on the simulator.

#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <span>

#include "codelet/codelet.hpp"

namespace c64fft::codelet {

class ConcurrentPool {
 public:
  explicit ConcurrentPool(PoolPolicy policy) : policy_(policy) {}

  /// Push one ready codelet.
  void push(CodeletKey c) {
    std::lock_guard lock(mutex_);
    items_.push_back(c);
  }

  /// Push a batch atomically, preserving the given order.
  void push_batch(std::span<const CodeletKey> batch) {
    std::lock_guard lock(mutex_);
    items_.insert(items_.end(), batch.begin(), batch.end());
  }

  /// Non-blocking pop per the policy; nullopt when empty.
  std::optional<CodeletKey> try_pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    CodeletKey c;
    if (policy_ == PoolPolicy::kLifo) {
      c = items_.back();
      items_.pop_back();
    } else {
      c = items_.front();
      items_.pop_front();
    }
    return c;
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  bool empty() const {
    std::lock_guard lock(mutex_);
    return items_.empty();
  }

  PoolPolicy policy() const noexcept { return policy_; }

 private:
  PoolPolicy policy_;
  mutable std::mutex mutex_;
  std::deque<CodeletKey> items_;
};

}  // namespace c64fft::codelet
