#pragma once
// Multi-phase pipeline model — the composite-plan input language of the
// static verifier.
//
// A PlanModel (model.hpp) describes ONE scheduled classic plan; shipped
// execution paths are compositions: the four-step path is five
// barrier-separated passes over two buffers, fft2d is row sweep +
// transpose + column sweep, real_fft is pack + half-size FFT + untangle.
// A PipelineModel makes that whole choreography explicit: an ordered list
// of phases (the runtime's run_phase barriers), each a set of unordered
// tasks with read/write footprints across named buffers. The builders
// below derive every footprint from the same hooks the runtime executes —
// fft::for_each_transpose_tile{,_pair}, fft::four_step_sweep_grain,
// fft::bitrev_sweep_grain, fft::fft2d_shape, fft::real_forward_shape,
// fft::real_unpack_sources and the FftPlan index algebra — so the model
// is the barrier hull of what actually runs, not a parallel description
// that can drift.
//
// Within one phase tasks are unordered (they may run concurrently on any
// worker); across phases the barrier orders everything. The fine/guided
// counter schedules refine this hull — their intra-phase orderings are
// proved separately by verify_graph/detect_races on the per-plan model —
// so a property proved here (coverage, aliasing-freedom) holds for every
// shipped schedule.

#include <cstdint>
#include <string>
#include <vector>

#include "fft/plan.hpp"
#include "fft/twiddle.hpp"

namespace c64fft::analysis {

/// One named storage region of the pipeline (the data array, the
/// four-step scratch, a twiddle table, the packed real-FFT buffer...).
struct BufferModel {
  std::string name;
  /// Element count (elements, not bytes).
  std::uint64_t elements = 0;
  /// Defined before phase 0 (transform input, twiddle tables). Reads of
  /// a non-input buffer are legal only after a phase has written the
  /// element — the read-before-write proof.
  bool input = false;
  /// Byte width of one element; 0 inherits PipelineModel::element_bytes.
  /// Real-scalar buffers (the real_fft signal) override to half the
  /// complex width.
  unsigned element_bytes = 0;
};

/// One element touched by a task: buffer id + element index.
struct Access {
  std::uint32_t buffer = 0;
  std::uint64_t element = 0;
};

/// One schedulable unit of a phase (a codelet, a transpose tile, a chunk
/// of rows of a sub-FFT sweep).
struct PipelineTask {
  std::uint64_t index = 0;
  std::vector<Access> reads;
  std::vector<Access> writes;
  /// Real floating-point operations.
  std::uint64_t flops = 0;
  /// How many times the task streams its footprint. A four-step row chunk
  /// re-reads and re-writes its rows once per sub-plan stage; modelling
  /// that as `passes` keeps the footprint (the coverage input) exact
  /// while the cost model still charges the repeated traffic.
  std::uint64_t passes = 1;
  /// Of `passes`, how many stream the footprint as data movement
  /// (transpose / gather / writeback / permutation) rather than in-place
  /// butterfly work — the input of the tile-traffic split. kAutoMovement
  /// derives it from the footprint: all passes for flop-free tasks, one
  /// for a fused single-pass movement (the twiddle-transpose), zero for
  /// in-place compute. Builders of fused multi-pass tasks (the
  /// hierarchical tail: gather-in + sweep + writeback-out) set it
  /// explicitly.
  static constexpr std::uint64_t kAutoMovement = ~std::uint64_t{0};
  std::uint64_t movement_passes = kAutoMovement;
};

/// One barrier-separated phase.
struct PhaseModel {
  std::string name;
  std::vector<PipelineTask> tasks;
  /// Buffers this phase claims to write completely: the coverage check
  /// proves every element of each listed buffer is written by exactly one
  /// task. Phases with partial footprints (bit-reversal, which never
  /// touches palindromic indices; the in-place square transpose, which
  /// never touches the diagonal) list nothing and are still proved
  /// overlap- and alias-free.
  std::vector<std::uint32_t> full_coverage;
};

struct PipelineModel {
  std::string name;
  /// Transform size (the public N, not a sub-plan size).
  std::uint64_t n = 0;
  unsigned radix_log2 = 0;
  /// Stable id of the kernel dispatch table the runtime would execute
  /// this pipeline with ("scalar" / "avx2" / "avx512") — stamped by the
  /// builders from the process-active table (fft::kernels), so a model
  /// built under fft_lint --isa=X records X. The kernel check validates
  /// the id against the dispatch registry and host cpuid support.
  std::string kernel_isa;
  /// Default byte width of one element (16 = double-complex, 8 =
  /// float-complex); per-buffer override in BufferModel.
  unsigned element_bytes = 16;

  std::vector<BufferModel> buffers;
  std::vector<PhaseModel> phases;

  std::uint32_t add_buffer(std::string buf_name, std::uint64_t elements,
                           bool input, unsigned elem_bytes = 0);
  std::size_t total_tasks() const;
  unsigned buffer_element_bytes(std::uint32_t buffer) const;
};

struct PipelineBuildOptions {
  /// Worker count the runtime grains its sweeps for (bitrev chunks, row
  /// chunks) — part of the modelled shape, not an analysis knob.
  unsigned workers = 4;
  /// 16 = f64 path, 8 = f32 path.
  unsigned element_bytes = 16;
  /// Twiddle storage layout of the classic stage phases.
  fft::TwiddleLayout layout = fft::TwiddleLayout::kLinear;
  /// Hierarchical leaf cap (log2 points); 0 derives it from the host L2
  /// exactly like the executor (fft::hierarchical_leaf_log2). Forcing a
  /// small leaf is how tests model multi-level decompositions at sizes
  /// the element-exact footprints can afford.
  unsigned hier_leaf_log2 = 0;
  /// Rows per pipelined hierarchical block; 0 = the executor's grain
  /// policy (fft::hierarchical_grain).
  std::uint64_t hier_block_rows = 0;
};

/// Classic single-transform pipeline: the chunked bit-reversal phase
/// (fft::bitrev_sweep_grain) followed by one phase per plan stage.
PipelineModel build_classic_pipeline(const fft::FftPlan& plan,
                                     const PipelineBuildOptions& opts = {},
                                     std::string name = {});

/// Batched pipeline (executor forward_batch/inverse_batch): a root phase
/// with one codelet per transform (whole-transform bit-reversal) followed
/// by one phase per stage over all transforms. Transforms are modelled at
/// consecutive offsets of one data buffer.
PipelineModel build_batch_pipeline(const fft::FftPlan& plan,
                                   std::uint64_t batch,
                                   const PipelineBuildOptions& opts = {},
                                   std::string name = {});

/// Four-step large-N pipeline (executor run_four_step_locked): blocked
/// transpose -> n2-row sweep of n1-point FFTs -> fused twiddle-transpose
/// -> n1-row sweep of n2-point FFTs -> final transpose (in place when
/// n1 == n2, through scratch plus copy-back otherwise). Transpose tasks
/// are the kTransposeTile tiles; sweep tasks are the worker-grained row
/// chunks. Sub-sweep twiddle-table traffic is deliberately not modelled:
/// the sub-tables are sized cache-resident (that is the point of the
/// decomposition), so charging them to the banks would overstate off-chip
/// traffic the shipped path never generates.
PipelineModel build_four_step_pipeline(std::uint64_t n, unsigned radix_log2,
                                       const PipelineBuildOptions& opts = {},
                                       std::string name = {});

/// Hierarchical large-N pipeline (executor run_hierarchical_locked): the
/// barrier hull of the tile-pipelined level — gather-transpose blocks of
/// data columns into the contiguous gather matrix, in-place column FFTs
/// over each block's rows, then the fused tail per output block
/// (twiddle-gather + row FFTs + writeback-transpose into natural order).
/// Tasks are the dependency-counted blocks the runtime actually
/// schedules (fft::hierarchical_grain), footprints element-exact, so the
/// coverage proof shows every data element written by exactly one fused
/// tail task. A multi-level split models the column transform as one
/// condensed per-row recursion phase: footprints stay exact (each task
/// owns its row of the gather matrix) while the recursion's repeated
/// streaming is charged via `passes`; the inner levels' own scratch —
/// like the per-worker T4 panels — is deliberately not modelled (both
/// are sized cache-resident by the leaf policy).
PipelineModel build_hierarchical_pipeline(std::uint64_t n, unsigned radix_log2,
                                          const PipelineBuildOptions& opts = {},
                                          std::string name = {});

/// Mixed-radix composite-N pipeline (executor run_mixed_radix_locked):
/// the chunked digit-reversal gather (fft::bitrev_sweep_grain, data ->
/// scratch) followed by one phase per stage of the factorization — stage
/// 0 reads the permuted scratch and writes data, later stages run in
/// place on data. Tasks are the executor's butterfly chunks (workers*4
/// cap), footprints the exact radix-r index sets plus the flat per-stage
/// twiddle reads, so the coverage proof shows every element written by
/// exactly one butterfly per stage. Throws unless n is 7-smooth.
PipelineModel build_mixed_radix_pipeline(std::uint64_t n,
                                         const PipelineBuildOptions& opts = {},
                                         std::string name = {});

/// Bluestein chirp-z pipeline (executor run_bluestein_locked) for
/// arbitrary N: serial chirp modulation into the M = next_pow2(2N-1)
/// convolution buffer (zero-filled tail), classic forward M-point FFT,
/// serial pointwise multiply by the precomputed chirp-filter spectrum,
/// classic inverse M-point FFT, serial demodulation back into data. The
/// inner transforms are modelled on the classic path — the shipped
/// routing for every M below the four-step threshold, which covers all
/// lint/baseline sizes; bigger M would swap in the four-step hull.
PipelineModel build_bluestein_pipeline(std::uint64_t n, unsigned radix_log2,
                                       const PipelineBuildOptions& opts = {},
                                       std::string name = {});

/// 2-D row-column pipeline (fft::forward_2d): batched row sweep,
/// transpose (in place when square, through scratch otherwise), batched
/// column sweep, transpose back.
PipelineModel build_fft2d_pipeline(std::uint64_t rows, std::uint64_t cols,
                                   unsigned radix_log2,
                                   const PipelineBuildOptions& opts = {},
                                   std::string name = {});

/// Real-input forward pipeline (fft::real_forward): pack phase (even/odd
/// interleave into the half-length complex buffer), classic half-point
/// FFT phases, untangling phase over the half+1 output bins with the
/// exact conjugate-mirror read pattern (fft::real_unpack_sources).
PipelineModel build_real_fft_pipeline(std::uint64_t n, unsigned radix_log2,
                                      const PipelineBuildOptions& opts = {},
                                      std::string name = {});

}  // namespace c64fft::analysis
