#include "analysis/tile_traffic.hpp"

#include <algorithm>
#include <string>

namespace c64fft::analysis {

namespace {

/// Movement passes of one task: the explicit builder value when set,
/// otherwise derived from the footprint — a task with no flops only
/// moves data; a task with flops is in-place butterfly work unless it
/// writes a buffer it never reads (the fused single-pass
/// twiddle-transpose), which charges one movement pass.
std::uint64_t movement_passes_of(const PipelineTask& task) {
  if (task.movement_passes != PipelineTask::kAutoMovement)
    return std::min(task.movement_passes, task.passes);
  if (task.flops == 0) return task.passes;
  std::uint64_t read_mask = 0;
  for (const Access& a : task.reads)
    if (a.buffer < 64) read_mask |= std::uint64_t{1} << a.buffer;
  for (const Access& a : task.writes)
    if (a.buffer >= 64 || (read_mask & (std::uint64_t{1} << a.buffer)) == 0)
      return 1;
  return 0;
}

std::uint64_t footprint_bytes(const PipelineModel& model,
                              const PipelineTask& task) {
  std::uint64_t bytes = 0;
  for (const Access& a : task.reads) bytes += model.buffer_element_bytes(a.buffer);
  for (const Access& a : task.writes) bytes += model.buffer_element_bytes(a.buffer);
  return bytes;
}

}  // namespace

CheckResult report_tile_traffic(const PipelineModel& model,
                                const TileTrafficOptions& opts) {
  CheckResult result;
  result.name = "tile-traffic";

  std::uint64_t total_transpose = 0;
  std::uint64_t total_butterfly = 0;
  double worst_imbalance = 0.0;

  for (std::size_t p = 0; p < model.phases.size(); ++p) {
    const PhaseModel& phase = model.phases[p];
    std::uint64_t phase_transpose = 0;
    std::uint64_t phase_butterfly = 0;
    std::uint64_t phase_bytes = 0;
    std::uint64_t max_task_bytes = 0;
    std::uint64_t max_task_index = 0;
    for (const PipelineTask& task : phase.tasks) {
      const std::uint64_t fp = footprint_bytes(model, task);
      const std::uint64_t movement = movement_passes_of(task);
      phase_transpose += movement * fp;
      phase_butterfly += (task.passes - movement) * fp;
      const std::uint64_t task_bytes = task.passes * fp;
      phase_bytes += task_bytes;
      if (task_bytes > max_task_bytes) {
        max_task_bytes = task_bytes;
        max_task_index = task.index;
      }
    }
    total_transpose += phase_transpose;
    total_butterfly += phase_butterfly;

    const std::string key = "phase" + std::to_string(p) + "_";
    result.metrics[key + "transpose_bytes"] =
        static_cast<double>(phase_transpose);
    result.metrics[key + "butterfly_bytes"] =
        static_cast<double>(phase_butterfly);

    if (phase.tasks.size() < 2 || phase_bytes == 0) continue;
    const double mean =
        static_cast<double>(phase_bytes) / static_cast<double>(phase.tasks.size());
    const double imbalance = static_cast<double>(max_task_bytes) / mean;
    result.metrics[key + "traffic_imbalance"] = imbalance;
    worst_imbalance = std::max(worst_imbalance, imbalance);
    if (imbalance > opts.imbalance_threshold &&
        result.diagnostics.size() < opts.max_diagnostics) {
      result.add(opts.strict ? Severity::kError : Severity::kWarning,
                 "tile-traffic-imbalance",
                 "phase '" + phase.name + "': task " +
                     std::to_string(max_task_index) + " streams " +
                     std::to_string(max_task_bytes) + " bytes, " +
                     std::to_string(imbalance) + "x the phase mean",
                 {static_cast<std::uint32_t>(p), max_task_index});
    }
  }

  const std::uint64_t total = total_transpose + total_butterfly;
  result.metrics["transpose_bytes"] = static_cast<double>(total_transpose);
  result.metrics["butterfly_bytes"] = static_cast<double>(total_butterfly);
  result.metrics["total_bytes"] = static_cast<double>(total);
  result.metrics["transpose_fraction"] =
      total != 0 ? static_cast<double>(total_transpose) / static_cast<double>(total)
                 : 0.0;
  result.metrics["max_traffic_imbalance"] = worst_imbalance;
  result.finalize();
  return result;
}

}  // namespace c64fft::analysis
