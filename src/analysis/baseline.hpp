#pragma once
// The lint-metrics baseline gate (tools/lint_check, ctest "lint_check").
//
// collect_lint_rows() runs the pipeline verifier over every shipped
// composite shape x precision and keeps the schedule-shape metrics of
// each; the committed LINT_baseline.json snapshot of those rows is
// diffed on every gated build, bench_diff-style. The metrics are pure
// functions of the plan algebra — zero measurement noise — so the
// tolerance only absorbs intentional retuning, and any drift beyond it
// means the schedule shape itself changed: a phase serialized, a chunk
// grain skewed, bank traffic concentrated, or a proof started failing.

#include <span>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace c64fft::analysis {

/// One gated row: a shipped pipeline shape at one precision.
struct LintBaselineRow {
  /// Stable key, e.g. "four-step-n262144-r6-f64".
  std::string key;
  /// Metric name -> value. Gated metrics: span_cost, total_work,
  /// makespan_bound, max_load_imbalance, bank_imbalance, errors (higher
  /// is worse) and avg_parallelism (lower is worse).
  std::vector<std::pair<std::string, double>> metrics;

  const double* find(const std::string& metric) const;
};

/// The shipped verification matrix: classic (linear + hashed twiddles),
/// four-step 2^18, hierarchical 2^18 (single-level) and 2^19 (forced
/// three-level), batch of 8, square and rectangular fft2d, real-input —
/// each at f64 (16-byte) and f32 (8-byte) element width.
std::vector<LintBaselineRow> collect_lint_rows(unsigned workers = 4);

/// Rows as a stable JSON document ({"lint_version":1,"rows":[...]}),
/// doubles at full round-trip precision.
std::string lint_rows_to_json(std::span<const LintBaselineRow> rows);

/// Parse rows back from the document (the committed baseline).
std::vector<LintBaselineRow> lint_rows_from_json(const util::JsonValue& doc);

struct LintGateOptions {
  /// Allowed relative drift per gated metric. Tight by default — these
  /// numbers are deterministic (see file comment).
  double tolerance = 0.10;
  /// A baseline row or gated metric missing from the current run fails
  /// (shapes silently dropping out of the matrix hides regressions).
  bool require_all_baseline = true;
};

struct LintDelta {
  std::string key;     ///< row key
  std::string metric;  ///< gated metric name
  double baseline = 0.0;
  double current = 0.0;
  /// > 1 always means "worse" (direction folded in per metric).
  double worse_ratio = 0.0;
  bool regressed = false;
  bool missing = false;
};

std::vector<LintDelta> diff_lint_rows(std::span<const LintBaselineRow> baseline,
                                      std::span<const LintBaselineRow> current,
                                      const LintGateOptions& opts = {});

bool has_lint_regression(std::span<const LintDelta> deltas);

/// Human-readable table, regressions marked, PASS/FAIL summary line.
std::string format_lint_report(std::span<const LintDelta> deltas,
                               const LintGateOptions& opts);

}  // namespace c64fft::analysis
