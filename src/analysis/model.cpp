#include "analysis/model.hpp"

#include "util/bit_ops.hpp"

namespace c64fft::analysis {

std::size_t PlanModel::find(codelet::CodeletKey key) const {
  for (std::size_t i = 0; i < codelets.size(); ++i)
    if (codelets[i].key == key) return i;
  return npos;
}

PlanModel build_model(const fft::FftPlan& plan, fft::TwiddleLayout layout,
                      Schedule schedule, std::string name) {
  PlanModel m;
  m.name = name.empty() ? (to_string(schedule) + "/" +
                           (layout == fft::TwiddleLayout::kLinear ? "linear" : "hashed"))
                        : std::move(name);
  m.n = plan.size();
  m.radix_log2 = plan.radix_log2();
  m.stages = plan.stage_count();
  m.schedule = schedule;
  m.layout = layout;
  m.twiddle_table_size = plan.size() / 2;
  const unsigned tw_bits = m.twiddle_table_size > 1 ? util::ilog2(m.twiddle_table_size) : 0;

  m.codelets.reserve(plan.total_tasks());
  std::vector<std::uint64_t> scratch;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i) {
      CodeletModel c;
      c.key = {s, i};
      plan.task_elements(s, i, c.reads);
      c.writes = c.reads;  // in-place butterflies store where they load
      plan.task_twiddles(s, i, scratch);
      c.twiddle_slots.reserve(scratch.size());
      for (std::uint64_t t : scratch)
        c.twiddle_slots.push_back(layout == fft::TwiddleLayout::kBitReversed
                                      ? util::bit_reverse(t, tw_bits)
                                      : t);
      m.graph.add_node(c.key);
      m.codelets.push_back(std::move(c));
    }
  }

  // Dependency edges + counter declarations, stage by consumer stage.
  for (std::uint32_t s = 1; s < plan.stage_count(); ++s) {
    const std::uint64_t groups = plan.groups_in_stage(s);
    for (std::uint64_t g = 0; g < groups; ++g) {
      GroupModel gm;
      gm.stage = s;
      gm.group = g;
      gm.threshold = plan.group_threshold(s);
      plan.group_members(s, g, gm.members);
      plan.group_parents(s, g, gm.producers);
      for (std::uint64_t p : gm.producers)
        for (std::uint64_t c : gm.members)
          m.graph.add_edge({s - 1, p}, {s, c});
      m.groups.push_back(std::move(gm));
    }
  }
  return m;
}

std::string to_string(Schedule s) {
  return s == Schedule::kBarrier ? "barrier" : "counters";
}

}  // namespace c64fft::analysis
