#include "analysis/verifier.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <sstream>
#include <unordered_map>
#include <vector>

namespace c64fft::analysis {

namespace {

using codelet::CodeletKey;
using codelet::CodeletKeyHash;

std::string key_str(CodeletKey k) {
  std::ostringstream os;
  os << "(stage " << k.stage << ", task " << k.index << ")";
  return os.str();
}

/// Kahn's algorithm over the dense graph; returns the nodes left with
/// nonzero in-degree (empty iff acyclic), so a cycle diagnostic can name
/// a participating codelet instead of just "there is a cycle somewhere".
std::vector<std::uint32_t> cycle_residue(const codelet::CodeletGraph& g) {
  const std::uint32_t n = static_cast<std::uint32_t>(g.node_count());
  std::vector<std::uint32_t> indeg(n);
  for (std::uint32_t v = 0; v < n; ++v)
    indeg[v] = static_cast<std::uint32_t>(g.predecessors(v).size());
  std::deque<std::uint32_t> ready;
  for (std::uint32_t v = 0; v < n; ++v)
    if (indeg[v] == 0) ready.push_back(v);
  std::uint32_t emitted = 0;
  while (!ready.empty()) {
    const std::uint32_t v = ready.front();
    ready.pop_front();
    ++emitted;
    for (std::uint32_t c : g.successors(v))
      if (--indeg[c] == 0) ready.push_back(c);
  }
  std::vector<std::uint32_t> residue;
  if (emitted == n) return residue;
  for (std::uint32_t v = 0; v < n; ++v)
    if (indeg[v] != 0) residue.push_back(v);
  return residue;
}

}  // namespace

CheckResult verify_graph(const PlanModel& model, const VerifierOptions& opts) {
  CheckResult res;
  res.name = "graph";
  res.metrics["nodes"] = static_cast<double>(model.graph.node_count());
  res.metrics["edges"] = static_cast<double>(model.graph.edge_count());
  res.metrics["groups"] = static_cast<double>(model.groups.size());

  // -- Acyclicity (both schedules: a cyclic CDG is broken regardless of
  // how the runtime orders it).
  const auto residue = cycle_residue(model.graph);
  res.metrics["cycle_nodes"] = static_cast<double>(residue.size());
  if (!residue.empty()) {
    const CodeletKey at = model.graph.key_of(residue.front());
    std::ostringstream os;
    os << "dependency graph has a cycle through " << residue.size() << " codelet(s), e.g. "
       << key_str(at) << " — the CDG is not well-behaved";
    res.add(Severity::kError, "cycle", os.str(), at);
  }

  if (model.schedule == Schedule::kBarrier) {
    res.note = "counter checks skipped: barrier schedule orders whole stages";
    res.finalize();
    return res;
  }

  // -- Counter declarations vs the DAG.
  std::unordered_map<CodeletKey, std::size_t, CodeletKeyHash> index;
  index.reserve(model.codelets.size());
  for (std::size_t i = 0; i < model.codelets.size(); ++i)
    index.emplace(model.codelets[i].key, i);
  std::size_t threshold_errors = 0, parent_errors = 0;
  // producer key -> groups it arrives at; member key -> release count.
  std::unordered_map<CodeletKey, std::vector<std::size_t>, CodeletKeyHash> arrivals;
  std::unordered_map<CodeletKey, std::size_t, CodeletKeyHash> releases;
  for (std::size_t gi = 0; gi < model.groups.size(); ++gi) {
    const GroupModel& gm = model.groups[gi];
    if (gm.threshold != gm.producers.size()) {
      if (++threshold_errors <= opts.max_diagnostics) {
        std::ostringstream os;
        os << "stage " << gm.stage << " group " << gm.group << ": declared threshold "
           << gm.threshold << " but " << gm.producers.size()
           << " producers arrive — the counter fires "
           << (gm.threshold > gm.producers.size() ? "never (deadlock)"
                                                  : "before all parents completed");
        res.add(Severity::kError, "threshold-mismatch", os.str(),
                {gm.stage, gm.group});
      }
    }
    std::vector<std::uint64_t> want(gm.producers);
    std::sort(want.begin(), want.end());
    for (std::uint64_t mtask : gm.members) {
      const CodeletKey member{gm.stage, mtask};
      ++releases[member];
      if (!index.count(member) || !model.graph.contains(member)) {
        res.add(Severity::kError, "orphan",
                "group member " + key_str(member) + " does not exist in the plan", member);
        continue;
      }
      // The member's DAG parents must be exactly the group's producers in
      // the previous stage (Section IV-A2 sibling-group invariant).
      std::vector<std::uint64_t> have;
      for (CodeletKey p : model.graph.parents(member))
        if (p.stage + 1 == gm.stage) have.push_back(p.index);
      std::sort(have.begin(), have.end());
      have.erase(std::unique(have.begin(), have.end()), have.end());
      if (have != want && ++parent_errors <= opts.max_diagnostics) {
        std::ostringstream os;
        os << "member " << key_str(member) << " has " << have.size()
           << " distinct stage-" << (gm.stage - 1) << " parents in the DAG but its group"
           << " declares " << want.size() << " producers";
        res.add(Severity::kError, "parent-set-mismatch", os.str(), member);
      }
    }
    for (std::uint64_t p : gm.producers) arrivals[{gm.stage - 1, p}].push_back(gi);
  }
  if (threshold_errors > opts.max_diagnostics)
    res.add(Severity::kError, "threshold-mismatch",
            std::to_string(threshold_errors - opts.max_diagnostics) +
                " further threshold mismatches suppressed");
  if (parent_errors > opts.max_diagnostics)
    res.add(Severity::kError, "parent-set-mismatch",
            std::to_string(parent_errors - opts.max_diagnostics) +
                " further parent-set mismatches suppressed");

  // -- Every non-seed codelet must be released by exactly one counter, and
  // every non-final codelet must arrive at exactly one counter.
  std::size_t orphan_count = 0;
  for (const CodeletModel& c : model.codelets) {
    if (c.key.stage == 0) continue;
    const auto it = releases.find(c.key);
    if (it == releases.end()) {
      if (++orphan_count <= opts.max_diagnostics)
        res.add(Severity::kError, "orphan",
                key_str(c.key) + " is a member of no sibling group: no counter ever "
                                 "releases it, so it can never fire",
                c.key);
    } else if (it->second > 1) {
      res.add(Severity::kError, "multi-release",
              key_str(c.key) + " is a member of " + std::to_string(it->second) +
                  " sibling groups and would be fired more than once",
              c.key);
    }
  }
  if (orphan_count > opts.max_diagnostics)
    res.add(Severity::kError, "orphan",
            std::to_string(orphan_count - opts.max_diagnostics) +
                " further orphaned codelets suppressed");
  for (const CodeletModel& c : model.codelets) {
    if (c.key.stage + 1 >= model.stages) continue;
    const auto it = arrivals.find(c.key);
    const std::size_t fanout = it == arrivals.end() ? 0 : it->second.size();
    if (fanout != 1)
      res.add(Severity::kError, "ambiguous-arrival",
              key_str(c.key) + " increments " + std::to_string(fanout) +
                  " counters; the runtime performs exactly one arrival per completion",
              c.key);
  }

  // -- Abstract counter machine: seed stage 0, run to quiescence.
  std::unordered_map<CodeletKey, bool, CodeletKeyHash> fired;
  std::vector<std::uint32_t> counter(model.groups.size(), 0);
  std::vector<bool> over_reported(model.groups.size(), false);
  std::deque<CodeletKey> pool;
  for (const CodeletModel& c : model.codelets)
    if (c.key.stage == 0) pool.push_back(c.key);
  std::size_t fired_count = 0;
  while (!pool.empty()) {
    const CodeletKey k = pool.front();
    pool.pop_front();
    if (fired[k]) continue;
    fired[k] = true;
    ++fired_count;
    const auto it = arrivals.find(k);
    if (it == arrivals.end()) continue;
    for (std::size_t gi : it->second) {
      const GroupModel& gm = model.groups[gi];
      if (counter[gi] >= gm.threshold) {
        if (!over_reported[gi]) {
          over_reported[gi] = true;
          std::ostringstream os;
          os << "stage " << gm.stage << " group " << gm.group
             << ": counter over-satisfied (more arrivals than threshold " << gm.threshold
             << ") — DependencyCounters::arrive would throw at runtime";
          res.add(Severity::kError, "over-arrival", os.str(), {gm.stage, gm.group});
        }
        continue;
      }
      if (++counter[gi] == gm.threshold)
        for (std::uint64_t m : gm.members) pool.push_back({gm.stage, m});
    }
  }
  res.metrics["fired"] = static_cast<double>(fired_count);
  if (fired_count != model.codelets.size()) {
    std::size_t shown = 0;
    std::ostringstream os;
    os << (model.codelets.size() - fired_count)
       << " codelet(s) can never fire from the stage-0 seed set, e.g.";
    for (const CodeletModel& c : model.codelets) {
      if (fired[c.key]) continue;
      os << ' ' << key_str(c.key);
      if (++shown == 3) break;
    }
    res.add(Severity::kError, "deadlock", os.str());
  }

  res.finalize();
  return res;
}

}  // namespace c64fft::analysis
