#include "analysis/race.hpp"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace c64fft::analysis {

namespace {

using codelet::CodeletKey;

std::string key_str(CodeletKey k) {
  std::ostringstream os;
  os << "(stage " << k.stage << ", task " << k.index << ")";
  return os.str();
}

/// Per-node transitive-successor bitsets over the dense graph, built in
/// reverse topological order. Empty when the graph is cyclic.
class Reachability {
 public:
  explicit Reachability(const codelet::CodeletGraph& g)
      : nodes_(static_cast<std::uint32_t>(g.node_count())),
        words_((nodes_ + 63) / 64) {
    std::vector<std::uint32_t> indeg(nodes_);
    for (std::uint32_t v = 0; v < nodes_; ++v)
      indeg[v] = static_cast<std::uint32_t>(g.predecessors(v).size());
    std::deque<std::uint32_t> ready;
    for (std::uint32_t v = 0; v < nodes_; ++v)
      if (indeg[v] == 0) ready.push_back(v);
    std::vector<std::uint32_t> topo;
    topo.reserve(nodes_);
    while (!ready.empty()) {
      const std::uint32_t v = ready.front();
      ready.pop_front();
      topo.push_back(v);
      for (std::uint32_t c : g.successors(v))
        if (--indeg[c] == 0) ready.push_back(c);
    }
    if (topo.size() != nodes_) return;  // cycle: leave bits_ empty
    bits_.assign(static_cast<std::size_t>(nodes_) * words_, 0);
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const std::uint32_t v = *it;
      std::uint64_t* row = &bits_[static_cast<std::size_t>(v) * words_];
      for (std::uint32_t c : g.successors(v)) {
        row[c / 64] |= std::uint64_t{1} << (c % 64);
        const std::uint64_t* crow = &bits_[static_cast<std::size_t>(c) * words_];
        for (std::size_t w = 0; w < words_; ++w) row[w] |= crow[w];
      }
    }
  }

  bool valid() const noexcept { return !bits_.empty() || nodes_ == 0; }

  bool reaches(std::uint32_t a, std::uint32_t b) const noexcept {
    return (bits_[static_cast<std::size_t>(a) * words_ + b / 64] >>
            (b % 64)) & 1u;
  }

 private:
  std::uint32_t nodes_;
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

struct PairStat {
  std::uint64_t example_element = 0;
  std::uint64_t shared = 0;  // conflicting elements of this pair
  bool write_write = false;
};

}  // namespace

CheckResult detect_races(const PlanModel& model, const RaceOptions& opts) {
  CheckResult res;
  res.name = "races";

  // Ordering oracle.
  const bool barrier = model.schedule == Schedule::kBarrier;
  Reachability reach(model.graph);
  if (!barrier && !reach.valid()) {
    res.status = "skipped";
    res.note = "dependency graph is cyclic; fix the graph check first";
    return res;
  }
  // Dense graph id per codelet (kNoId when the codelet is not a graph
  // node at all — then nothing orders it, so it conflicts with any
  // overlapping access).
  constexpr std::uint32_t kNoId = 0xFFFFFFFFu;
  std::vector<std::uint32_t> gid(model.codelets.size(), kNoId);
  for (std::size_t i = 0; i < model.codelets.size(); ++i)
    if (model.graph.contains(model.codelets[i].key))
      gid[i] = model.graph.id_of(model.codelets[i].key);

  auto ordered = [&](std::size_t a, std::size_t b) {
    if (barrier) return model.codelets[a].key.stage != model.codelets[b].key.stage;
    if (gid[a] == kNoId || gid[b] == kNoId) return false;
    return reach.reaches(gid[a], gid[b]) || reach.reaches(gid[b], gid[a]);
  };

  // Invert the footprints: element -> accessors. Only codelets sharing an
  // element are ever compared, so the pair work scales with footprint
  // overlap, not with codelets^2.
  struct Accessor {
    std::uint32_t codelet;
    bool write;
  };
  std::unordered_map<std::uint64_t, std::vector<Accessor>> accessors;
  accessors.reserve(model.n);
  for (std::size_t i = 0; i < model.codelets.size(); ++i) {
    const auto ci = static_cast<std::uint32_t>(i);
    for (std::uint64_t e : model.codelets[i].reads) accessors[e].push_back({ci, false});
    for (std::uint64_t e : model.codelets[i].writes) accessors[e].push_back({ci, true});
  }

  std::map<std::pair<std::uint32_t, std::uint32_t>, PairStat> racing;
  std::unordered_set<std::uint64_t> known_ordered;
  std::uint64_t queries = 0;
  for (const auto& [element, accs] : accessors) {
    for (std::size_t x = 0; x < accs.size(); ++x) {
      for (std::size_t y = x + 1; y < accs.size(); ++y) {
        if (accs[x].codelet == accs[y].codelet) continue;
        if (!accs[x].write && !accs[y].write) continue;
        const auto pair = std::minmax(accs[x].codelet, accs[y].codelet);
        const std::uint64_t pair_key =
            (static_cast<std::uint64_t>(pair.first) << 32) | pair.second;
        if (known_ordered.count(pair_key)) continue;
        auto it = racing.find({pair.first, pair.second});
        // One ordering query per pair is enough: ordered pairs are cached,
        // racing pairs just accumulate their conflict statistics.
        if (it == racing.end()) {
          ++queries;
          if (ordered(pair.first, pair.second)) {
            known_ordered.insert(pair_key);
            continue;
          }
          it = racing.emplace(std::make_pair(pair.first, pair.second), PairStat{})
                   .first;
          it->second.example_element = element;
        }
        ++it->second.shared;
        it->second.write_write |= accs[x].write && accs[y].write;
      }
    }
  }

  res.metrics["order_queries"] = static_cast<double>(queries);
  res.metrics["racing_pairs"] = static_cast<double>(racing.size());

  std::size_t shown = 0;
  for (const auto& [pair, stat] : racing) {
    if (++shown > opts.max_diagnostics) break;
    const CodeletKey a = model.codelets[pair.first].key;
    const CodeletKey b = model.codelets[pair.second].key;
    std::ostringstream os;
    os << key_str(a) << " and " << key_str(b) << " are unordered by the "
       << (barrier ? "barrier schedule" : "dependency DAG") << " yet share "
       << stat.shared << " data element(s) with a "
       << (stat.write_write ? "write-write" : "read-write")
       << " conflict, e.g. element " << stat.example_element;
    res.add(Severity::kError, stat.write_write ? "race-ww" : "race-rw", os.str(), a);
  }
  if (racing.size() > opts.max_diagnostics)
    res.add(Severity::kError, "race-rw",
            std::to_string(racing.size() - opts.max_diagnostics) +
                " further racing pairs suppressed");

  res.finalize();
  return res;
}

}  // namespace c64fft::analysis
