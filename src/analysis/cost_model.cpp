#include "analysis/cost_model.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "c64/address_map.hpp"

namespace c64fft::analysis {

namespace {

std::uint64_t task_cost(const PipelineTask& t) {
  return t.flops +
         t.passes * static_cast<std::uint64_t>(t.reads.size() + t.writes.size());
}

}  // namespace

CheckResult model_costs(const PipelineModel& model, const CostModelOptions& opts) {
  CheckResult res;
  res.name = "cost";
  const Severity sev = opts.strict ? Severity::kError : Severity::kWarning;
  const unsigned workers = std::max(1u, opts.workers);

  // Bank-aligned base byte address per buffer: each buffer starts on a
  // fresh interleave super-line (banks * interleave bytes), the natural
  // alignment of a large allocation, so the histogram measures the access
  // pattern, not accidental base offsets.
  const c64::AddressMap map(opts.banks, opts.interleave_bytes);
  const std::uint64_t super = std::uint64_t{opts.banks} * opts.interleave_bytes;
  std::vector<std::uint64_t> base(model.buffers.size(), 0);
  std::uint64_t next = 0;
  for (std::size_t b = 0; b < model.buffers.size(); ++b) {
    base[b] = next;
    const std::uint64_t bytes = model.buffers[b].elements *
                                model.buffer_element_bytes(
                                    static_cast<std::uint32_t>(b));
    next += (bytes + super - 1) / super * super + super;
  }
  std::vector<std::uint64_t> bank_bytes(opts.banks, 0);

  double span_cost = 0, total_work = 0, makespan = 0, max_imbalance = 0;
  std::size_t flagged = 0;
  for (std::size_t p = 0; p < model.phases.size(); ++p) {
    const PhaseModel& phase = model.phases[p];
    std::uint64_t work = 0, span = 0, max_task = 0;
    for (const PipelineTask& t : phase.tasks) {
      const std::uint64_t cost = task_cost(t);
      work += cost;
      if (cost > span) {
        span = cost;
        max_task = t.index;
      }
      for (const Access& a : t.reads) {
        if (a.buffer >= model.buffers.size()) continue;
        const unsigned eb = model.buffer_element_bytes(a.buffer);
        bank_bytes[map.bank_of_element(base[a.buffer], a.element, eb)] +=
            t.passes * eb;
      }
      for (const Access& a : t.writes) {
        if (a.buffer >= model.buffers.size()) continue;
        const unsigned eb = model.buffer_element_bytes(a.buffer);
        bank_bytes[map.bank_of_element(base[a.buffer], a.element, eb)] +=
            t.passes * eb;
      }
    }
    span_cost += static_cast<double>(span);
    total_work += static_cast<double>(work);
    makespan += static_cast<double>(work) / workers +
                static_cast<double>(workers - 1) / workers *
                    static_cast<double>(span);

    const std::string pi = "phase" + std::to_string(p);
    res.metrics[pi + "_tasks"] = static_cast<double>(phase.tasks.size());
    res.metrics[pi + "_work"] = static_cast<double>(work);
    res.metrics[pi + "_span"] = static_cast<double>(span);
    res.metrics[pi + "_parallelism"] =
        span ? static_cast<double>(work) / static_cast<double>(span) : 0.0;

    if (phase.tasks.size() >= 2 && work > 0) {
      const double mean = static_cast<double>(work) /
                          static_cast<double>(phase.tasks.size());
      const double imbalance = static_cast<double>(span) / mean;
      max_imbalance = std::max(max_imbalance, imbalance);
      if (imbalance > opts.load_imbalance_threshold &&
          ++flagged <= opts.max_diagnostics) {
        std::ostringstream os;
        os << "phase \"" << phase.name << "\" is load-imbalanced: slowest task "
           << max_task << " costs " << span << " against a mean of " << mean
           << " over " << phase.tasks.size() << " tasks (ratio "
           << imbalance << " > " << opts.load_imbalance_threshold
           << ") — the barrier idles every other worker for the difference";
        res.add(sev, "load-imbalance", os.str(),
                {static_cast<std::uint32_t>(p), max_task});
      }
    }
  }

  std::uint64_t total_bytes = 0, max_bank = 0;
  for (unsigned b = 0; b < opts.banks; ++b) {
    total_bytes += bank_bytes[b];
    max_bank = std::max(max_bank, bank_bytes[b]);
    res.metrics["bank" + std::to_string(b) + "_bytes"] =
        static_cast<double>(bank_bytes[b]);
  }
  const double bank_imbalance =
      total_bytes ? static_cast<double>(max_bank) * opts.banks /
                        static_cast<double>(total_bytes)
                  : 1.0;
  if (bank_imbalance > opts.bank_imbalance_threshold) {
    std::ostringstream os;
    os << "bytes moved are bank-imbalanced: hottest bank carries " << max_bank
       << " of " << total_bytes << " bytes (" << bank_imbalance
       << "x fair share > " << opts.bank_imbalance_threshold << ")";
    res.add(sev, "bank-bytes-imbalance", os.str());
  }

  res.metrics["workers"] = static_cast<double>(workers);
  res.metrics["banks"] = static_cast<double>(opts.banks);
  res.metrics["phases"] = static_cast<double>(model.phases.size());
  res.metrics["span_cost"] = span_cost;
  res.metrics["total_work"] = total_work;
  res.metrics["avg_parallelism"] = span_cost > 0 ? total_work / span_cost : 0.0;
  res.metrics["makespan_bound"] = makespan;
  res.metrics["max_load_imbalance"] = max_imbalance;
  res.metrics["bank_imbalance"] = bank_imbalance;
  res.finalize();
  return res;
}

}  // namespace c64fft::analysis
