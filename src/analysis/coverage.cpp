#include "analysis/coverage.hpp"

#include <cstdint>
#include <sstream>
#include <vector>

namespace c64fft::analysis {

namespace {

constexpr std::uint32_t kNoWriter = 0xFFFFFFFFu;

std::string task_str(std::size_t phase, std::uint64_t task) {
  std::ostringstream os;
  os << "(phase " << phase << ", task " << task << ")";
  return os.str();
}

}  // namespace

CheckResult check_coverage(const PipelineModel& model,
                           const CoverageOptions& opts) {
  CheckResult res;
  res.name = "coverage";

  // defined[b][e]: element e of buffer b holds a value some earlier phase
  // (or the caller, for input buffers) produced.
  std::vector<std::vector<char>> defined(model.buffers.size());
  for (std::size_t b = 0; b < model.buffers.size(); ++b)
    defined[b].assign(model.buffers[b].elements, model.buffers[b].input ? 1 : 0);

  std::size_t overlaps = 0, aliases = 0, undef_reads = 0, oob = 0, gaps = 0;
  std::uint64_t accesses = 0;
  // writer[b][e]: task index (within the current phase) that wrote the
  // element, kNoWriter if untouched this phase. Task counts per phase are
  // far below the sentinel.
  std::vector<std::vector<std::uint32_t>> writer(model.buffers.size());

  auto diag = [&](std::size_t& counter, const char* code, std::size_t phase,
                  std::uint64_t task, const std::string& msg) {
    if (++counter <= opts.max_diagnostics)
      res.add(Severity::kError, code, msg,
              {static_cast<std::uint32_t>(phase), task});
  };

  for (std::size_t p = 0; p < model.phases.size(); ++p) {
    const PhaseModel& phase = model.phases[p];
    for (std::size_t b = 0; b < model.buffers.size(); ++b)
      writer[b].assign(model.buffers[b].elements, kNoWriter);

    // Pass 1: writes — overlap and bounds.
    for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
      const PipelineTask& task = phase.tasks[t];
      for (const Access& a : task.writes) {
        ++accesses;
        if (a.buffer >= model.buffers.size() ||
            a.element >= model.buffers[a.buffer].elements) {
          std::ostringstream os;
          os << task_str(p, task.index) << " writes out of bounds: buffer "
             << a.buffer << " element " << a.element;
          diag(oob, "oob-access", p, task.index, os.str());
          continue;
        }
        std::uint32_t& w = writer[a.buffer][a.element];
        if (w != kNoWriter && w != t) {
          std::ostringstream os;
          os << task_str(p, task.index) << " and "
             << task_str(p, phase.tasks[w].index) << " both write "
             << model.buffers[a.buffer].name << "[" << a.element
             << "] in phase \"" << phase.name << "\"";
          diag(overlaps, "write-overlap", p, task.index, os.str());
        }
        w = static_cast<std::uint32_t>(t);
      }
    }

    // Pass 2: reads — intra-phase aliasing and definedness.
    for (std::size_t t = 0; t < phase.tasks.size(); ++t) {
      const PipelineTask& task = phase.tasks[t];
      for (const Access& a : task.reads) {
        ++accesses;
        if (a.buffer >= model.buffers.size() ||
            a.element >= model.buffers[a.buffer].elements) {
          std::ostringstream os;
          os << task_str(p, task.index) << " reads out of bounds: buffer "
             << a.buffer << " element " << a.element;
          diag(oob, "oob-access", p, task.index, os.str());
          continue;
        }
        const std::uint32_t w = writer[a.buffer][a.element];
        if (w != kNoWriter && w != t) {
          std::ostringstream os;
          os << task_str(p, task.index) << " reads "
             << model.buffers[a.buffer].name << "[" << a.element
             << "] which " << task_str(p, phase.tasks[w].index)
             << " writes in the same phase \"" << phase.name
             << "\" — unordered tasks, so the read races the write";
          diag(aliases, "phase-aliasing", p, task.index, os.str());
        }
        if (!defined[a.buffer][a.element]) {
          std::ostringstream os;
          os << task_str(p, task.index) << " reads "
             << model.buffers[a.buffer].name << "[" << a.element
             << "] before any phase wrote it";
          diag(undef_reads, "read-before-write", p, task.index, os.str());
        }
      }
    }

    // Coverage claims, then fold this phase's writes into `defined`.
    for (std::uint32_t b : phase.full_coverage) {
      if (b >= model.buffers.size()) continue;
      std::uint64_t missing = 0, example = 0;
      for (std::uint64_t e = 0; e < model.buffers[b].elements; ++e)
        if (writer[b][e] == kNoWriter && missing++ == 0) example = e;
      if (missing != 0) {
        std::ostringstream os;
        os << "phase \"" << phase.name << "\" claims full coverage of "
           << model.buffers[b].name << " but leaves " << missing
           << " element(s) unwritten, e.g. [" << example << "]";
        diag(gaps, "coverage-gap", p, Diagnostic::kNoStage, os.str());
      }
    }
    for (std::size_t b = 0; b < model.buffers.size(); ++b)
      for (std::uint64_t e = 0; e < model.buffers[b].elements; ++e)
        if (writer[b][e] != kNoWriter) defined[b][e] = 1;
  }

  const std::size_t total = overlaps + aliases + undef_reads + oob + gaps;
  if (total > res.diagnostics.size())
    res.add(Severity::kError, "coverage-suppressed",
            std::to_string(total - res.diagnostics.size()) +
                " further coverage findings suppressed");

  res.metrics["phases"] = static_cast<double>(model.phases.size());
  res.metrics["tasks"] = static_cast<double>(model.total_tasks());
  res.metrics["buffers"] = static_cast<double>(model.buffers.size());
  res.metrics["accesses_checked"] = static_cast<double>(accesses);
  res.metrics["write_overlaps"] = static_cast<double>(overlaps);
  res.metrics["phase_aliases"] = static_cast<double>(aliases);
  res.metrics["undefined_reads"] = static_cast<double>(undef_reads);
  res.metrics["oob_accesses"] = static_cast<double>(oob);
  res.metrics["coverage_gaps"] = static_cast<double>(gaps);
  res.finalize();
  return res;
}

}  // namespace c64fft::analysis
