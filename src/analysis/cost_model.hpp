#pragma once
// Critical-path & load cost model over a PipelineModel.
//
// Static schedule economics of the barrier hull: per phase, the work
// (sum of task costs), the span (max task cost — the phase's critical
// path, since a barrier waits for its slowest task) and the resulting
// parallelism profile; globally, the DAG span (sum of phase spans), the
// total work, and Graham's list-scheduling makespan bound
//   sum_p ( work_p / P  +  (P-1)/P * span_p )
// for P workers. Task cost = flops + passes * (reads + writes): one
// abstract unit per real flop and per element touched per streaming
// pass — deliberately machine-free, so regressions in the *shape* of the
// schedule (a serialized phase, a skewed chunk) move the numbers while
// compiler/hardware noise cannot. Per-bank bytes-moved histograms reuse
// the c64::AddressMap interleave algebra with each buffer based at a
// bank-aligned address, giving the same memory-load-balance lens as the
// twiddle bank lint but for whole-pipeline traffic.

#include "analysis/pipeline.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct CostModelOptions {
  /// Workers of the makespan bound.
  unsigned workers = 4;
  /// Bank geometry of the bytes-moved histogram (C64 node defaults).
  unsigned banks = 4;
  unsigned interleave_bytes = 64;
  /// Phase flagged when max task cost / mean task cost exceeds this
  /// (phases with >= 2 tasks only).
  double load_imbalance_threshold = 1.75;
  /// Flagged when max-bank bytes * banks / total bytes exceeds this.
  double bank_imbalance_threshold = 1.5;
  /// Promote the imbalance warnings to errors (fft_lint --strict-cost).
  bool strict = false;
  /// Diagnostic cap, matching the other checks.
  std::size_t max_diagnostics = 8;
};

/// Computes the profile and emits "load-imbalance" /
/// "bank-bytes-imbalance" diagnostics. Metrics include span_cost,
/// total_work, avg_parallelism, makespan_bound, max_load_imbalance,
/// bank_imbalance, per-phase phase{i}_{tasks,work,span,parallelism} and
/// per-bank bank{b}_bytes.
CheckResult model_costs(const PipelineModel& model,
                        const CostModelOptions& opts = {});

}  // namespace c64fft::analysis
