#include "analysis/bank_lint.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <vector>

#include "c64/address_map.hpp"

namespace c64fft::analysis {

CheckResult lint_banks(const PlanModel& model, const BankLintOptions& opts) {
  CheckResult res;
  res.name = "banks";
  const Severity sev = opts.strict ? Severity::kError : Severity::kWarning;
  const unsigned elem = opts.element_bytes ? opts.element_bytes : model.element_bytes;
  const c64::AddressMap map(opts.banks, opts.interleave_bytes);

  std::uint32_t stages = model.stages;
  for (const CodeletModel& c : model.codelets)
    stages = std::max(stages, c.key.stage + 1);

  // Per-stage per-bank access tallies, data vs twiddle stream, plus the
  // gcd of each stage's twiddle-slot offsets (the effective stride the
  // diagnostics explain the hotspot with).
  std::vector<std::vector<std::uint64_t>> data(stages), twiddle(stages);
  std::vector<std::uint64_t> tw_first(stages, 0), tw_gcd(stages, 0);
  std::vector<bool> tw_seen(stages, false);
  for (std::uint32_t s = 0; s < stages; ++s) {
    data[s].assign(opts.banks, 0);
    twiddle[s].assign(opts.banks, 0);
  }
  for (const CodeletModel& c : model.codelets) {
    const std::uint32_t s = c.key.stage;
    for (std::uint64_t e : c.reads)
      ++data[s][map.bank_of_element(opts.data_base, e, elem)];
    for (std::uint64_t e : c.writes)
      ++data[s][map.bank_of_element(opts.data_base, e, elem)];
    for (std::uint64_t t : c.twiddle_slots) {
      ++twiddle[s][map.bank_of_element(opts.twiddle_base, t, elem)];
      if (!tw_seen[s]) {
        tw_seen[s] = true;
        tw_first[s] = t;
      } else {
        const std::uint64_t d = t >= tw_first[s] ? t - tw_first[s] : tw_first[s] - t;
        tw_gcd[s] = std::gcd(tw_gcd[s], d);
      }
    }
  }

  // Whole-run totals. Imbalance (max-bank / mean-bank, the
  // fft::TrafficCensus definition) is judged on the combined traffic AND
  // on the twiddle stream alone: the data stream of a contiguous FFT is
  // balanced by construction and would otherwise dilute the Fig. 1
  // twiddle hotspot below any useful threshold.
  std::vector<std::uint64_t> totals(opts.banks, 0), tw_totals(opts.banks, 0);
  for (std::uint32_t s = 0; s < stages; ++s)
    for (unsigned b = 0; b < opts.banks; ++b) {
      totals[b] += data[s][b] + twiddle[s][b];
      tw_totals[b] += twiddle[s][b];
    }
  const auto imbalance_of = [&](const std::vector<std::uint64_t>& v, unsigned& hot_out) {
    const std::uint64_t sum = std::accumulate(v.begin(), v.end(), std::uint64_t{0});
    hot_out = static_cast<unsigned>(std::max_element(v.begin(), v.end()) - v.begin());
    if (sum == 0) return 1.0;
    return static_cast<double>(v[hot_out]) * opts.banks / static_cast<double>(sum);
  };
  unsigned hot = 0, tw_hot = 0;
  const double imbalance = imbalance_of(totals, hot);
  const double tw_imbalance = imbalance_of(tw_totals, tw_hot);

  res.metrics["element_bytes"] = elem;
  res.metrics["imbalance"] = imbalance;
  res.metrics["twiddle_imbalance"] = tw_imbalance;
  res.metrics["threshold"] = opts.imbalance_threshold;
  res.metrics["hottest_bank"] = hot;
  for (unsigned b = 0; b < opts.banks; ++b) {
    std::uint64_t d = 0;
    for (std::uint32_t s = 0; s < stages; ++s) d += data[s][b];
    res.metrics["bank" + std::to_string(b) + "_data"] = static_cast<double>(d);
    res.metrics["bank" + std::to_string(b) + "_twiddle"] =
        static_cast<double>(tw_totals[b]);
  }

  if (imbalance > opts.imbalance_threshold || tw_imbalance > opts.imbalance_threshold) {
    const bool by_twiddle = tw_imbalance > imbalance;
    std::ostringstream os;
    os << "bank " << (by_twiddle ? tw_hot : hot) << " receives "
       << (by_twiddle ? tw_imbalance : imbalance) << "x the mean per-bank "
       << (by_twiddle ? "twiddle" : "total") << " traffic (threshold "
       << opts.imbalance_threshold
       << "): the layout concentrates accesses instead of spreading them "
          "round-robin";
    res.add(sev, "bank-imbalance", os.str());
  }

  // Per-stage twiddle-stream concentration: a stage whose twiddle loads
  // all land on one bank is the Fig. 1 hotspot signature; explain it via
  // the stream's stride pushed through the address map.
  for (std::uint32_t s = 0; s < stages; ++s) {
    const std::uint64_t stage_tw =
        std::accumulate(twiddle[s].begin(), twiddle[s].end(), std::uint64_t{0});
    if (stage_tw < opts.banks) continue;  // too few samples to judge
    const unsigned touched = static_cast<unsigned>(
        std::count_if(twiddle[s].begin(), twiddle[s].end(),
                      [](std::uint64_t v) { return v != 0; }));
    if (touched > 1) continue;
    const auto bank = static_cast<unsigned>(
        std::max_element(twiddle[s].begin(), twiddle[s].end()) - twiddle[s].begin());
    std::ostringstream os;
    os << "stage " << s << ": all " << stage_tw << " twiddle loads hit bank " << bank;
    if (tw_gcd[s] != 0) {
      const std::uint64_t stride_bytes = tw_gcd[s] * elem;
      os << " (slot stride gcd " << tw_gcd[s] << " elements = " << stride_bytes
         << " B touches " << map.banks_touched_by_stride(stride_bytes) << " of "
         << opts.banks << " banks)";
    }
    res.add(sev, "twiddle-single-bank", os.str(), {s, 0});
  }

  res.finalize();
  return res;
}

CheckResult lint_cache_sets(const PlanModel& model, const CacheSetLintOptions& opts) {
  CheckResult res;
  res.name = "cache-sets";
  const Severity sev = opts.strict ? Severity::kError : Severity::kWarning;
  const unsigned elem = opts.element_bytes ? opts.element_bytes : model.element_bytes;
  // set_of(addr) = (addr / line) mod sets is bank_of with banks = sets and
  // interleave = line_bytes, so the c64 address map is reused verbatim.
  const c64::AddressMap map(opts.sets, opts.line_bytes);

  std::uint32_t stages = model.stages;
  for (const CodeletModel& c : model.codelets)
    stages = std::max(stages, c.key.stage + 1);

  // Conflict misses are a PER-CODELET phenomenon: different codelets of a
  // stage start at different bases, so the stage-wide histogram is flat
  // even when every single codelet's footprint folds onto one set. Tally
  // per codelet the distinct cache lines it touches and the distinct sets
  // those lines index into, plus the gcd of its element deltas (the
  // stride the report keys the finding by; 1 for stages mixing strides).
  std::vector<double> sum_lines(stages, 0), sum_sets(stages, 0);
  std::vector<std::uint64_t> min_sets(stages, 0), counts(stages, 0),
      stride_gcd(stages, 0);
  std::vector<std::vector<std::uint64_t>> hist(stages);
  for (std::uint32_t s = 0; s < stages; ++s) hist[s].assign(opts.sets, 0);
  std::vector<std::uint64_t> lines, line_sets;
  for (const CodeletModel& c : model.codelets) {
    const std::uint32_t s = c.key.stage;
    lines.clear();
    for (std::uint64_t e : c.reads)
      lines.push_back((opts.data_base + e * elem) / opts.line_bytes);
    for (std::uint64_t e : c.writes)
      lines.push_back((opts.data_base + e * elem) / opts.line_bytes);
    std::sort(lines.begin(), lines.end());
    lines.erase(std::unique(lines.begin(), lines.end()), lines.end());
    line_sets = lines;
    for (std::uint64_t& l : line_sets) l %= opts.sets;
    for (std::uint64_t l : line_sets) ++hist[s][l];
    std::sort(line_sets.begin(), line_sets.end());
    line_sets.erase(std::unique(line_sets.begin(), line_sets.end()),
                    line_sets.end());
    sum_lines[s] += static_cast<double>(lines.size());
    sum_sets[s] += static_cast<double>(line_sets.size());
    min_sets[s] = counts[s] == 0 ? line_sets.size()
                                 : std::min(min_sets[s], line_sets.size());
    ++counts[s];
    for (std::size_t i = 1; i < c.reads.size(); ++i) {
      const std::uint64_t a = c.reads[i - 1], b = c.reads[i];
      stride_gcd[s] = std::gcd(stride_gcd[s], b >= a ? b - a : a - b);
    }
  }

  res.metrics["sets"] = opts.sets;
  res.metrics["line_bytes"] = opts.line_bytes;
  res.metrics["element_bytes"] = elem;

  for (std::uint32_t s = 0; s < stages; ++s) {
    if (counts[s] == 0) continue;
    const double lines_per = sum_lines[s] / static_cast<double>(counts[s]);
    const double sets_per = sum_sets[s] / static_cast<double>(counts[s]);
    const unsigned touched = static_cast<unsigned>(
        std::count_if(hist[s].begin(), hist[s].end(),
                      [](std::uint64_t v) { return v != 0; }));
    const std::string tag = "stage" + std::to_string(s);
    res.metrics[tag + "_stride"] = static_cast<double>(stride_gcd[s]);
    res.metrics[tag + "_chain_lines"] = lines_per;
    res.metrics[tag + "_chain_sets"] = sets_per;
    res.metrics[tag + "_stage_sets_touched"] = touched;

    // A codelet that walks more lines than the sets they fold onto is
    // queueing lines behind each set's associativity ways. Judge against
    // the best a footprint of that size could do (all distinct sets, or
    // all `sets` when the footprint is larger than the cache's index
    // range).
    const double ideal = std::min<double>(opts.sets, lines_per);
    if (lines_per < 2 || sets_per >= opts.min_set_coverage * ideal) continue;
    std::ostringstream os;
    const std::uint64_t stride_bytes = stride_gcd[s] * elem;
    os << "stage " << s << ": a codelet's " << lines_per
       << "-line footprint (element stride gcd " << stride_gcd[s] << " = "
       << stride_bytes << " B) folds onto " << sets_per << " of " << opts.sets
       << " cache sets: the strided chain walk queues behind those sets' "
          "associativity ways instead of using the whole cache";
    res.add(sev, "cache-set-conflict", os.str(), {s, 0});
  }

  res.finalize();
  return res;
}

}  // namespace c64fft::analysis
