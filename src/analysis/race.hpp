#pragma once
// Static schedule-race detection (fft_lint check "races").
//
// Two codelets race when they touch a common data element, at least one
// writes it, and the schedule does not order them: under
// Schedule::kCounters "ordered" means connected by a directed path in the
// dependency DAG; under Schedule::kBarrier it means belonging to
// different stages. The detector inverts the footprints (element ->
// accessors), so only codelets that actually share an element are ever
// compared, and answers ordering queries from per-node reachability
// bitsets — it proves race-freedom of a whole schedule without running a
// single thread.
//
// Requires an acyclic graph under kCounters; the analyzer skips this
// check (status "skipped") when the verifier found a cycle.

#include "analysis/model.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct RaceOptions {
  /// Cap on emitted race diagnostics; the true conflicting-pair count is
  /// always in the check metrics.
  std::size_t max_diagnostics = 8;
};

CheckResult detect_races(const PlanModel& model, const RaceOptions& opts = {});

}  // namespace c64fft::analysis
