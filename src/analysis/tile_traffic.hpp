#pragma once
// Per-level tile-traffic report over a PipelineModel.
//
// The memory-load-balance lens of the paper, applied to the composite
// pipelines: for every barrier phase ("level" of the four-step /
// hierarchical decompositions), the bytes its tasks stream, split into
// data movement (transpose tiles, gathers, writebacks, permutations)
// versus in-place butterfly traffic, plus a per-phase skew diagnostic —
// one tile task moving far more bytes than its phase's mean is exactly
// the imbalance a dependency-counted pipeline cannot hide behind a
// barrier. The split is derived from the footprint algebra
// (PipelineTask::movement_passes), so a fused task (the hierarchical
// tail: gather-in + row sweep + writeback-out) charges each side
// honestly.

#include "analysis/pipeline.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct TileTrafficOptions {
  /// Phase flagged when max task bytes / mean task bytes exceeds this
  /// (phases with >= 2 tasks only).
  double imbalance_threshold = 1.75;
  /// Promote the imbalance warnings to errors.
  bool strict = false;
  /// Diagnostic cap, matching the other checks.
  std::size_t max_diagnostics = 8;
};

/// Computes the per-phase traffic table and emits "tile-traffic-imbalance"
/// diagnostics. Metrics: transpose_bytes, butterfly_bytes, total_bytes,
/// transpose_fraction, max_traffic_imbalance, and per-phase
/// phase{i}_{transpose_bytes,butterfly_bytes,traffic_imbalance}.
CheckResult report_tile_traffic(const PipelineModel& model,
                                const TileTrafficOptions& opts = {});

}  // namespace c64fft::analysis
