#pragma once
// Static well-formedness checks over a PlanModel's dependency structure
// (fft_lint check "graph"):
//
//  * acyclicity — the producer->consumer DAG must be well-behaved
//    (paper Section III-C3: well-behaved CDGs compute deterministic
//    results);
//  * counter declarations — every sibling group's declared threshold must
//    equal its actual producer count, and every member's DAG parent set
//    must be exactly the group's producer set (the paper's "64 parents
//    share one counter" invariant, Section IV-A2);
//  * orphans — every non-seed codelet must be released by some counter,
//    and every counter member / producer must exist;
//  * deadlock-freedom — an abstract counter-machine run from the stage-0
//    seed set must fire every codelet exactly once, with no counter
//    over-satisfied (the static analogue of DependencyCounters::arrive
//    throwing at runtime).
//
// Under Schedule::kBarrier only acyclicity is meaningful (barriers order
// stages unconditionally); the counter checks are skipped with a note.

#include "analysis/model.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct VerifierOptions {
  /// Cap on diagnostics emitted per defect class (the totals are always
  /// reported in the check metrics, so nothing is silently dropped).
  std::size_t max_diagnostics = 8;
};

CheckResult verify_graph(const PlanModel& model, const VerifierOptions& opts = {});

}  // namespace c64fft::analysis
