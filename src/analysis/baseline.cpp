#include "analysis/baseline.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "analysis/analyzer.hpp"

namespace c64fft::analysis {

namespace {

/// Gated metric -> direction. Everything else in the report (per-phase
/// profile, per-bank bytes) is informational: it feeds debugging, not the
/// gate, so adding a phase to a builder does not invalidate every
/// baseline row.
struct GatedMetric {
  const char* name;
  bool higher_is_worse;
};
constexpr GatedMetric kGated[] = {
    {"span_cost", true},          {"total_work", true},
    {"makespan_bound", true},     {"max_load_imbalance", true},
    {"bank_imbalance", true},     {"errors", true},
    {"avg_parallelism", false},
};

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_row(std::vector<LintBaselineRow>& rows, const PipelineModel& model,
                std::string key, unsigned workers) {
  PipelineAnalysisOptions opts;
  opts.cost.workers = workers;
  const AnalysisReport report = analyze_pipeline(model, opts);
  LintBaselineRow row;
  row.key = std::move(key);
  for (const CheckResult& check : report.checks) {
    if (check.name != "cost") continue;
    for (const auto& [name, value] : check.metrics)
      row.metrics.emplace_back(name, value);
  }
  row.metrics.emplace_back("errors", static_cast<double>(report.errors()));
  rows.push_back(std::move(row));
}

}  // namespace

const double* LintBaselineRow::find(const std::string& metric) const {
  for (const auto& [name, value] : metrics)
    if (name == metric) return &value;
  return nullptr;
}

std::vector<LintBaselineRow> collect_lint_rows(unsigned workers) {
  std::vector<LintBaselineRow> rows;
  struct Precision {
    const char* tag;
    unsigned element_bytes;
  };
  constexpr Precision kPrecisions[] = {{"f64", 16}, {"f32", 8}};
  for (const Precision& prec : kPrecisions) {
    PipelineBuildOptions opts;
    opts.workers = workers;
    opts.element_bytes = prec.element_bytes;
    const std::string suffix = std::string{"-"} + prec.tag;

    const fft::FftPlan classic(4096, 6);
    opts.layout = fft::TwiddleLayout::kLinear;
    append_row(rows, build_classic_pipeline(classic, opts),
               "classic-linear-n4096-r6" + suffix, workers);
    opts.layout = fft::TwiddleLayout::kBitReversed;
    append_row(rows, build_classic_pipeline(classic, opts),
               "classic-hashed-n4096-r6" + suffix, workers);
    opts.layout = fft::TwiddleLayout::kLinear;

    append_row(rows, build_four_step_pipeline(std::uint64_t{1} << 18, 6, opts),
               "four-step-n262144-r6" + suffix, workers);

    // Hierarchical rows pin the leaf and block-rows knobs explicitly: the
    // builder's defaults derive both from the host L2 via cache_info(),
    // and baseline rows must stay pure plan algebra — identical on every
    // machine that runs the gate. leaf=9 keeps 2^18 single-level
    // (512x512); leaf=6 forces the three-level recursion at 2^19.
    PipelineBuildOptions hier = opts;
    hier.hier_leaf_log2 = 9;
    hier.hier_block_rows = 64;
    append_row(rows,
               build_hierarchical_pipeline(std::uint64_t{1} << 18, 6, hier),
               "hierarchical-n262144-r6" + suffix, workers);
    hier.hier_leaf_log2 = 6;
    append_row(rows,
               build_hierarchical_pipeline(std::uint64_t{1} << 19, 6, hier),
               "hierarchical3l-n524288-r6" + suffix, workers);
    append_row(rows, build_batch_pipeline(fft::FftPlan(256, 6), 8, opts),
               "batch8-n256-r6" + suffix, workers);
    append_row(rows, build_fft2d_pipeline(64, 64, 6, opts),
               "fft2d-64x64-r6" + suffix, workers);
    append_row(rows, build_fft2d_pipeline(32, 64, 6, opts),
               "fft2d-32x64-r6" + suffix, workers);
    append_row(rows, build_real_fft_pipeline(4096, 6, opts),
               "real-n4096-r6" + suffix, workers);
    // Arbitrary-N rows: one 7-smooth composite through the mixed-radix
    // hull and one prime through the Bluestein chirp-z hull. Both are
    // pure plan algebra (no cache_info dependence), so they gate like
    // the classic rows.
    append_row(rows, build_mixed_radix_pipeline(1000, opts),
               "mixed-radix-n1000" + suffix, workers);
    append_row(rows, build_bluestein_pipeline(101, 6, opts),
               "bluestein-n101" + suffix, workers);
  }
  return rows;
}

std::string lint_rows_to_json(std::span<const LintBaselineRow> rows) {
  std::ostringstream os;
  os << "{\n  \"lint_version\": 1,\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    os << (i ? ",\n" : "\n") << "    {\n      \"key\": \"" << rows[i].key
       << "\",\n      \"metrics\": {";
    const auto& metrics = rows[i].metrics;
    for (std::size_t m = 0; m < metrics.size(); ++m)
      os << (m ? ",\n" : "\n") << "        \"" << metrics[m].first
         << "\": " << fmt_double(metrics[m].second);
    os << "\n      }\n    }";
  }
  os << "\n  ]\n}\n";
  return os.str();
}

std::vector<LintBaselineRow> lint_rows_from_json(const util::JsonValue& doc) {
  std::vector<LintBaselineRow> rows;
  for (const util::JsonValue& item : doc.at("rows").items()) {
    LintBaselineRow row;
    row.key = item.at("key").as_string();
    for (const auto& [name, value] : item.at("metrics").members())
      row.metrics.emplace_back(name, value.as_number());
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<LintDelta> diff_lint_rows(std::span<const LintBaselineRow> baseline,
                                      std::span<const LintBaselineRow> current,
                                      const LintGateOptions& opts) {
  std::vector<LintDelta> deltas;
  for (const LintBaselineRow& base_row : baseline) {
    const LintBaselineRow* cur_row = nullptr;
    for (const LintBaselineRow& c : current)
      if (c.key == base_row.key) {
        cur_row = &c;
        break;
      }
    for (const GatedMetric& gm : kGated) {
      const double* base = base_row.find(gm.name);
      if (!base) continue;  // older baseline without this metric
      LintDelta d;
      d.key = base_row.key;
      d.metric = gm.name;
      d.baseline = *base;
      const double* cur = cur_row ? cur_row->find(gm.name) : nullptr;
      if (!cur) {
        d.missing = true;
        d.regressed = opts.require_all_baseline;
        deltas.push_back(std::move(d));
        continue;
      }
      d.current = *cur;
      // Fold direction so > 1 is always worse; a zero denominator means
      // "was perfect": any nonzero drift regresses, equality passes.
      const double num = gm.higher_is_worse ? d.current : d.baseline;
      const double den = gm.higher_is_worse ? d.baseline : d.current;
      if (den == 0.0)
        d.worse_ratio = num == 0.0 ? 1.0 : std::numeric_limits<double>::infinity();
      else
        d.worse_ratio = num / den;
      d.regressed = d.worse_ratio > 1.0 + opts.tolerance;
      deltas.push_back(std::move(d));
    }
  }
  return deltas;
}

bool has_lint_regression(std::span<const LintDelta> deltas) {
  for (const LintDelta& d : deltas)
    if (d.regressed) return true;
  return false;
}

std::string format_lint_report(std::span<const LintDelta> deltas,
                               const LintGateOptions& opts) {
  std::ostringstream os;
  std::size_t regressed = 0, missing = 0;
  for (const LintDelta& d : deltas) {
    os << (d.regressed ? "FAIL " : "  ok ") << d.key << " " << d.metric << ": ";
    if (d.missing) {
      os << "missing from current run";
      ++missing;
    } else {
      os << d.baseline << " -> " << d.current << " (worse-ratio "
         << d.worse_ratio << ")";
    }
    if (d.regressed) ++regressed;
    os << "\n";
  }
  os << (regressed ? "FAIL: " : "PASS: ") << deltas.size() << " gated metrics, "
     << regressed << " regressed beyond " << opts.tolerance * 100.0 << "%, "
     << missing << " missing\n";
  return os.str();
}

}  // namespace c64fft::analysis
