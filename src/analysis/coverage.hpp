#pragma once
// Write-coverage / single-assignment verifier over a PipelineModel.
//
// Proves, phase by phase, the memory discipline the barrier schedule
// relies on:
//  * no two tasks of one phase write the same element ("write-overlap" —
//    the transpose tile-overlap / chunk off-by-one class);
//  * no task reads an element another task of the same phase writes
//    ("phase-aliasing" — unordered tasks, so such a read is a race; the
//    fused-stage aliasing class);
//  * every read is of an element some earlier phase wrote or of an input
//    buffer ("read-before-write");
//  * every access lands inside its buffer ("oob-access");
//  * each buffer a phase claims via full_coverage is written completely
//    ("coverage-gap" — a dropped tile or chunk).
// A task rewriting its own element (in-place butterflies) is legal; the
// "exactly once" contract is per element per phase across distinct tasks.

#include "analysis/pipeline.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct CoverageOptions {
  /// Per-code diagnostic cap; totals are always exact in the metrics.
  std::size_t max_diagnostics = 8;
};

/// Runs the proof; never executes a kernel. Diagnostic `where` anchors
/// to {phase index, task index}.
CheckResult check_coverage(const PipelineModel& model,
                           const CoverageOptions& opts = {});

}  // namespace c64fft::analysis
