#include "analysis/analyzer.hpp"

#include "fft/kernels/dispatch.hpp"
#include "util/cpu_features.hpp"

namespace c64fft::analysis {

CheckResult check_kernel_dispatch(const PipelineModel& model) {
  CheckResult result;
  result.name = "kernel";
  if (model.kernel_isa.empty()) {
    // Hand-built models may not record a dispatch id; that is not a
    // defect, there is just nothing to verify.
    result.status = "skipped";
    result.note = "model records no kernel isa";
    return result;
  }
  // The registry is the dispatch tables themselves: an id is known iff
  // some level's table carries it, so this check can never drift from
  // the kernels the runtime actually ships.
  bool known = false;
  util::IsaLevel level = util::IsaLevel::kScalar;
  for (const util::IsaLevel l : {util::IsaLevel::kScalar, util::IsaLevel::kAvx2,
                                 util::IsaLevel::kAvx512}) {
    if (model.kernel_isa == fft::kernels::kernels_for<double>(l).id) {
      known = true;
      level = l;
      break;
    }
  }
  if (!known) {
    result.add(Severity::kError, "unknown-kernel-isa",
               "kernel isa id '" + model.kernel_isa +
                   "' names no registered dispatch table");
  } else if (!util::isa_supported(level)) {
    result.add(Severity::kError, "unsupported-kernel-isa",
               "kernel isa '" + model.kernel_isa +
                   "' is not executable on this host (best supported: " +
                   util::to_string(util::best_supported_isa()) + ")");
  } else {
    result.note = "dispatch table '" + model.kernel_isa + "'";
    result.metrics["isa_level"] = static_cast<double>(level);
  }
  result.finalize();
  return result;
}

AnalysisReport analyze(const PlanModel& model, const AnalysisOptions& opts) {
  AnalysisReport report;
  report.plan_name = model.name;
  report.n = model.n;
  report.radix_log2 = model.radix_log2;
  report.stages = model.stages;
  report.codelets = model.codelets.size();
  report.schedule = to_string(model.schedule);
  report.layout = model.layout == fft::TwiddleLayout::kLinear ? "linear" : "hashed";

  bool cyclic = false;
  if (opts.check_graph) {
    CheckResult graph = verify_graph(model, opts.verifier);
    for (const Diagnostic& d : graph.diagnostics) cyclic |= d.code == "cycle";
    report.checks.push_back(std::move(graph));
  }
  if (opts.check_races) {
    if (cyclic && model.schedule == Schedule::kCounters) {
      CheckResult skipped;
      skipped.name = "races";
      skipped.status = "skipped";
      skipped.note = "dependency graph is cyclic; fix the graph check first";
      report.checks.push_back(std::move(skipped));
    } else {
      report.checks.push_back(detect_races(model, opts.races));
    }
  }
  if (opts.check_banks) report.checks.push_back(lint_banks(model, opts.banks));
  if (opts.check_cache_sets)
    report.checks.push_back(lint_cache_sets(model, opts.cache_sets));
  return report;
}

AnalysisReport analyze_plan(const fft::FftPlan& plan, fft::TwiddleLayout layout,
                            Schedule schedule, const AnalysisOptions& opts,
                            std::string name) {
  return analyze(build_model(plan, layout, schedule, std::move(name)), opts);
}

AnalysisReport analyze_pipeline(const PipelineModel& model,
                                const PipelineAnalysisOptions& opts) {
  AnalysisReport report;
  report.plan_name = model.name;
  report.n = model.n;
  report.radix_log2 = model.radix_log2;
  report.stages = static_cast<std::uint32_t>(model.phases.size());
  report.codelets = model.total_tasks();
  report.schedule = "pipeline";
  report.layout = model.kernel_isa;
  if (opts.check_kernel) report.checks.push_back(check_kernel_dispatch(model));
  if (opts.check_coverage)
    report.checks.push_back(check_coverage(model, opts.coverage));
  if (opts.check_cost) {
    CostModelOptions cost = opts.cost;
    report.checks.push_back(model_costs(model, cost));
  }
  if (opts.check_tile_traffic)
    report.checks.push_back(report_tile_traffic(model, opts.tile_traffic));
  return report;
}

}  // namespace c64fft::analysis
