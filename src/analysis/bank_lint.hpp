#pragma once
// Static DRAM bank-balance lint (fft_lint check "banks").
//
// Pushes every modelled data and twiddle access through the
// c64::AddressMap (64 B round-robin interleave over 4 banks by default)
// and flags layouts whose traffic concentrates beyond a threshold. This
// statically reproduces the paper's Fig. 1 finding — the linear twiddle
// layout funnels the early stages' twiddle loads onto the bank holding
// the table base, bank 0 — and certifies that the bit-reversed ("hashed",
// Fig. 6) layout spreads them evenly. Imbalance is measured exactly as in
// fft::TrafficCensus: hottest-bank accesses divided by the per-bank mean.
//
// Bank imbalance is a performance hazard, not a correctness bug, so the
// findings are warnings by default; `strict` promotes them to errors.

#include <cstdint>

#include "analysis/model.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct BankLintOptions {
  unsigned banks = 4;
  unsigned interleave_bytes = 64;
  unsigned element_bytes = 16;  // one double-precision complex
  /// Byte addresses of the two arrays (interleave-aligned bank-0 bases,
  /// as in the paper's setup).
  std::uint64_t data_base = 0;
  std::uint64_t twiddle_base = 0;
  /// Flag when max-bank / mean-bank exceeds this (paper reports ~3x on
  /// the hotspot; 1.5 keeps headroom over the ~1.0 of balanced layouts).
  double imbalance_threshold = 1.5;
  /// Emit bank findings as errors instead of warnings.
  bool strict = false;
};

CheckResult lint_banks(const PlanModel& model, const BankLintOptions& opts = {});

}  // namespace c64fft::analysis
