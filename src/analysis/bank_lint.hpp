#pragma once
// Static DRAM bank-balance lint (fft_lint check "banks").
//
// Pushes every modelled data and twiddle access through the
// c64::AddressMap (64 B round-robin interleave over 4 banks by default)
// and flags layouts whose traffic concentrates beyond a threshold. This
// statically reproduces the paper's Fig. 1 finding — the linear twiddle
// layout funnels the early stages' twiddle loads onto the bank holding
// the table base, bank 0 — and certifies that the bit-reversed ("hashed",
// Fig. 6) layout spreads them evenly. Imbalance is measured exactly as in
// fft::TrafficCensus: hottest-bank accesses divided by the per-bank mean.
//
// Bank imbalance is a performance hazard, not a correctness bug, so the
// findings are warnings by default; `strict` promotes them to errors.

#include <cstdint>

#include "analysis/model.hpp"
#include "analysis/report.hpp"

namespace c64fft::analysis {

struct BankLintOptions {
  unsigned banks = 4;
  unsigned interleave_bytes = 64;
  /// 0 = inherit PlanModel::element_bytes (16 for a double-complex model);
  /// a nonzero value overrides it, e.g. to re-lint an f64 model at f32
  /// width (8) without rebuilding it.
  unsigned element_bytes = 0;
  /// Byte addresses of the two arrays (interleave-aligned bank-0 bases,
  /// as in the paper's setup).
  std::uint64_t data_base = 0;
  std::uint64_t twiddle_base = 0;
  /// Flag when max-bank / mean-bank exceeds this (paper reports ~3x on
  /// the hotspot; 1.5 keeps headroom over the ~1.0 of balanced layouts).
  double imbalance_threshold = 1.5;
  /// Emit bank findings as errors instead of warnings.
  bool strict = false;
};

CheckResult lint_banks(const PlanModel& model, const BankLintOptions& opts = {});

/// Host-cache analogue of the bank lint (fft_lint check "cache-sets",
/// opt-in via --cache-sets). A set-associative cache indexes lines by
/// set_of(addr) = (addr / line_bytes) mod sets — the same modular algebra
/// as the DRAM round-robin interleave, so a power-of-two access stride
/// folds onto a handful of sets exactly the way the linear twiddle layout
/// folds onto bank 0. The late stages of a classic large-N plan stride by
/// R^s elements; once stride_bytes/line_bytes is a multiple of `sets`,
/// EVERY element of a chain lands in one set and the stage thrashes its
/// associativity ways instead of using the whole cache. The four-step
/// path exists to avoid precisely this regime (its sub-FFTs and blocked
/// transposes keep strides inside a tile).
struct CacheSetLintOptions {
  /// Geometry defaults match this project's reference host L1d:
  /// 48 KiB, 64 B lines, 12-way => 64 sets.
  unsigned sets = 64;
  unsigned line_bytes = 64;
  /// 0 = inherit PlanModel::element_bytes; nonzero overrides (see
  /// BankLintOptions::element_bytes).
  unsigned element_bytes = 0;
  std::uint64_t data_base = 0;
  /// Flag a stage whose typical codelet footprint folds onto fewer sets
  /// than this fraction of the best that footprint could achieve (1/2
  /// keeps the verdict robust to edge stages while still catching the
  /// single-set collapse, which scores 1/footprint).
  double min_set_coverage = 0.5;
  /// Emit findings as errors instead of warnings.
  bool strict = false;
};

/// Per-stage stride -> set-index histogram report over the model's data
/// accesses, judged per codelet (a stage-wide histogram is flat even when
/// every codelet collapses onto one set, because codelet bases differ).
/// Diagnostics use code "cache-set-conflict"; metrics expose
/// stage{s}_stride / stage{s}_chain_lines / stage{s}_chain_sets /
/// stage{s}_stage_sets_touched.
CheckResult lint_cache_sets(const PlanModel& model,
                            const CacheSetLintOptions& opts = {});

}  // namespace c64fft::analysis
