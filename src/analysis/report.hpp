#pragma once
// Diagnostics and the machine-readable lint report.
//
// Every check emits Diagnostics with a stable `code` (documented in
// README "fft_lint" section) so tooling can filter without parsing
// message prose. AnalysisReport::to_json() renders the whole run as a
// single JSON object — the format CI archives and the tests assert on.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "codelet/codelet.hpp"

namespace c64fft::analysis {

enum class Severity { kWarning, kError };

struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable machine id: "cycle", "threshold-mismatch", "parent-set-mismatch",
  /// "orphan", "deadlock", "over-arrival", "ambiguous-arrival",
  /// "race-ww", "race-rw", "bank-imbalance", "twiddle-single-bank";
  /// pipeline checks add "write-overlap", "phase-aliasing",
  /// "read-before-write", "coverage-gap", "oob-access",
  /// "load-imbalance", "bank-bytes-imbalance".
  std::string code;
  std::string message;
  /// Primary codelet the finding anchors to (kNoKey when plan-wide).
  codelet::CodeletKey where{kNoStage, 0};

  static constexpr std::uint32_t kNoStage = 0xFFFFFFFFu;
  bool has_location() const noexcept { return where.stage != kNoStage; }
};

/// Outcome of one check ("graph", "races", "banks").
struct CheckResult {
  std::string name;
  /// "pass" (ran, clean), "warn" (warnings only), "fail" (>= 1 error),
  /// "skipped" (not run, reason in `note`).
  std::string status = "pass";
  std::string note;
  std::vector<Diagnostic> diagnostics;
  /// Check-specific numbers (e.g. races.pairs_checked, banks.imbalance).
  std::map<std::string, double> metrics;

  void add(Severity sev, std::string code, std::string message,
           codelet::CodeletKey where = {Diagnostic::kNoStage, 0});
  void finalize();  ///< derives `status` from the diagnostics
  std::size_t errors() const;
  std::size_t warnings() const;
};

struct AnalysisReport {
  // Plan identity (copied from the model).
  std::string plan_name;
  std::uint64_t n = 0;
  unsigned radix_log2 = 0;
  std::uint32_t stages = 0;
  std::size_t codelets = 0;
  std::string schedule;
  std::string layout;

  std::vector<CheckResult> checks;

  std::size_t errors() const;
  std::size_t warnings() const;
  bool passed() const { return errors() == 0; }
  /// "pass" / "warn" / "fail" over all checks.
  std::string status() const;

  /// The whole report as one JSON object (schema in README).
  std::string to_json() const;
};

std::string to_string(Severity s);

}  // namespace c64fft::analysis
