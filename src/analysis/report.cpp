#include "analysis/report.hpp"

#include <cstdio>
#include <sstream>

namespace c64fft::analysis {

namespace {

// Minimal JSON string escaping: the report only ever emits ASCII
// identifiers and messages, so control characters and quotes suffice.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_diag(std::ostringstream& os, const Diagnostic& d) {
  os << "{\"severity\":\"" << to_string(d.severity) << "\",\"code\":\""
     << json_escape(d.code) << "\",\"message\":\"" << json_escape(d.message) << '"';
  if (d.has_location())
    os << ",\"stage\":" << d.where.stage << ",\"codelet\":" << d.where.index;
  os << '}';
}

}  // namespace

void CheckResult::add(Severity sev, std::string code, std::string message,
                      codelet::CodeletKey where) {
  diagnostics.push_back({sev, std::move(code), std::move(message), where});
}

std::size_t CheckResult::errors() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics)
    if (d.severity == Severity::kError) ++n;
  return n;
}

std::size_t CheckResult::warnings() const { return diagnostics.size() - errors(); }

void CheckResult::finalize() {
  if (status == "skipped") return;
  status = errors() ? "fail" : (diagnostics.empty() ? "pass" : "warn");
}

std::size_t AnalysisReport::errors() const {
  std::size_t n = 0;
  for (const auto& c : checks) n += c.errors();
  return n;
}

std::size_t AnalysisReport::warnings() const {
  std::size_t n = 0;
  for (const auto& c : checks) n += c.warnings();
  return n;
}

std::string AnalysisReport::status() const {
  if (errors()) return "fail";
  return warnings() ? "warn" : "pass";
}

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"fft_lint\":{\"version\":1},";
  os << "\"plan\":{\"name\":\"" << json_escape(plan_name) << "\",\"n\":" << n
     << ",\"radix_log2\":" << radix_log2 << ",\"stages\":" << stages
     << ",\"codelets\":" << codelets << ",\"schedule\":\"" << json_escape(schedule)
     << "\",\"layout\":\"" << json_escape(layout) << "\"},";
  os << "\"checks\":[";
  for (std::size_t i = 0; i < checks.size(); ++i) {
    const CheckResult& c = checks[i];
    if (i) os << ',';
    os << "{\"name\":\"" << json_escape(c.name) << "\",\"status\":\"" << c.status << '"';
    if (!c.note.empty()) os << ",\"note\":\"" << json_escape(c.note) << '"';
    os << ",\"metrics\":{";
    bool first = true;
    for (const auto& [k, v] : c.metrics) {
      if (!first) os << ',';
      first = false;
      os << '"' << json_escape(k) << "\":" << v;
    }
    os << "},\"diagnostics\":[";
    for (std::size_t d = 0; d < c.diagnostics.size(); ++d) {
      if (d) os << ',';
      append_diag(os, c.diagnostics[d]);
    }
    os << "]}";
  }
  os << "],\"errors\":" << errors() << ",\"warnings\":" << warnings() << ",\"status\":\""
     << status() << "\"}";
  return os.str();
}

std::string to_string(Severity s) { return s == Severity::kError ? "error" : "warning"; }

}  // namespace c64fft::analysis
