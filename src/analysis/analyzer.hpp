#pragma once
// fft_lint's engine: runs the graph verifier, the static race detector
// and the bank-balance lint over a PlanModel and folds the results into
// one AnalysisReport. Also the one-call entry point for linting a shipped
// plan variant straight from (N, radix, layout, schedule).

#include "analysis/bank_lint.hpp"
#include "analysis/cost_model.hpp"
#include "analysis/coverage.hpp"
#include "analysis/model.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/race.hpp"
#include "analysis/report.hpp"
#include "analysis/tile_traffic.hpp"
#include "analysis/verifier.hpp"

namespace c64fft::analysis {

struct AnalysisOptions {
  bool check_graph = true;
  bool check_races = true;
  bool check_banks = true;
  /// Opt-in report mode (fft_lint --cache-sets): host-cache set-conflict
  /// histogram of the data stream, stage by stage.
  bool check_cache_sets = false;
  VerifierOptions verifier;
  RaceOptions races;
  BankLintOptions banks;
  CacheSetLintOptions cache_sets;
};

/// Run every enabled check. The race check is skipped (not failed) when
/// the verifier found a cycle, since reachability is undefined then.
AnalysisReport analyze(const PlanModel& model, const AnalysisOptions& opts = {});

/// Build the model of a shipped plan variant and analyze it.
AnalysisReport analyze_plan(const fft::FftPlan& plan, fft::TwiddleLayout layout,
                            Schedule schedule, const AnalysisOptions& opts = {},
                            std::string name = {});

struct PipelineAnalysisOptions {
  bool check_coverage = true;
  bool check_cost = true;
  /// Per-level tile-traffic report (bytes per phase, transpose vs
  /// butterfly split, per-phase skew) — a report-style check like the
  /// bank lint, warnings unless tile_traffic.strict.
  bool check_tile_traffic = true;
  /// Validate PipelineModel::kernel_isa against the kernel dispatch
  /// registry and host cpuid support. Cheap, so always on; a failure is
  /// a model-construction error (fft_lint exit 2).
  bool check_kernel = true;
  CoverageOptions coverage;
  CostModelOptions cost;
  TileTrafficOptions tile_traffic;
};

/// The kernel-dispatch check on its own: the model's kernel_isa id must
/// name a registered dispatch table ("scalar"/"avx2"/"avx512") whose ISA
/// level this host can execute. Codes: "unknown-kernel-isa",
/// "unsupported-kernel-isa".
CheckResult check_kernel_dispatch(const PipelineModel& model);

/// Run the whole-pipeline checks (write-coverage proof, critical-path /
/// load cost model) over a composite-plan model built by the
/// build_*_pipeline functions. Reported with schedule "pipeline"; the
/// `stages` field carries the phase count and `codelets` the task count.
AnalysisReport analyze_pipeline(const PipelineModel& model,
                                const PipelineAnalysisOptions& opts = {});

}  // namespace c64fft::analysis
