#pragma once
// Analyzable model of one scheduled FFT plan — the input language of the
// static analyzer (fft_lint).
//
// A PlanModel makes everything the runtime keeps implicit explicit: each
// codelet's read/write footprint on the data array, its twiddle storage
// slots (layout already applied), the producer->consumer dependency DAG,
// and the shared-counter declarations (sibling groups, thresholds) a
// DependencyCounters table would be built from. The analyzer never runs a
// codelet; it proves properties of this model — and tests seed defects by
// mutating a model built from a correct plan.

#include <cstdint>
#include <string>
#include <vector>

#include "codelet/codelet.hpp"
#include "codelet/graph.hpp"
#include "fft/plan.hpp"
#include "fft/twiddle.hpp"

namespace c64fft::analysis {

/// How codelets are ordered at runtime: Alg. 1 separates stages with
/// barriers; Alg. 2/3 order only through the shared dependency counters.
enum class Schedule { kBarrier, kCounters };

struct CodeletModel {
  codelet::CodeletKey key;
  /// Data element indices the codelet loads / stores (in-place kernels
  /// read and write the same set, but the model keeps them separate so
  /// defective plans can skew either side).
  std::vector<std::uint64_t> reads;
  std::vector<std::uint64_t> writes;
  /// Twiddle-table *storage* slots loaded (bit-reversal applied for the
  /// hashed layout) — the twiddle array is read-only, so these feed only
  /// the bank lint, never the race check.
  std::vector<std::uint64_t> twiddle_slots;
};

/// One shared dependency counter: the sibling group of `members` (task
/// indices in consumer stage `stage`) becomes ready when `threshold`
/// producer completions have arrived; `producers` are the stage-1 tasks
/// whose completion increments this counter.
struct GroupModel {
  std::uint32_t stage = 0;
  std::uint64_t group = 0;
  std::uint32_t threshold = 0;
  std::vector<std::uint64_t> members;
  std::vector<std::uint64_t> producers;
};

struct PlanModel {
  std::string name;
  std::uint64_t n = 0;
  unsigned radix_log2 = 0;
  std::uint32_t stages = 0;
  Schedule schedule = Schedule::kCounters;
  fft::TwiddleLayout layout = fft::TwiddleLayout::kLinear;
  /// Twiddle-table slots (N/2 for a standard table).
  std::uint64_t twiddle_table_size = 0;
  /// Byte width of one complex element of the modelled transform
  /// (16 = double-complex, 8 = float-complex). The byte-level checks
  /// (bank balance, cache sets) multiply every element index by this, so
  /// the same plan genuinely lints differently at the two precisions.
  unsigned element_bytes = 16;

  std::vector<CodeletModel> codelets;
  /// Producer -> consumer edges; one edge per (producer, consumer) pair of
  /// the plan algebra. Under kCounters this DAG is exactly the ordering
  /// the counters enforce.
  codelet::CodeletGraph graph;
  /// Counter declarations, one per sibling group of every stage >= 1.
  /// Meaningful only under kCounters.
  std::vector<GroupModel> groups;

  /// Position of `key` in `codelets`, or npos if absent.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find(codelet::CodeletKey key) const;
};

/// Builds the model of a shipped plan: footprints from the plan's index
/// algebra, the dependency DAG from parents_of/children_of, and group
/// declarations from the sibling-group algebra (the same numbers
/// fft::fft_host feeds DependencyCounters).
PlanModel build_model(const fft::FftPlan& plan, fft::TwiddleLayout layout,
                      Schedule schedule, std::string name = {});

std::string to_string(Schedule s);

}  // namespace c64fft::analysis
