#include "analysis/pipeline.hpp"

#include <stdexcept>
#include <utility>

#include "fft/executor.hpp"
#include "fft/fft2d.hpp"
#include "fft/kernels/dispatch.hpp"
#include "fft/mixed_radix.hpp"
#include "fft/real_fft.hpp"
#include "fft/transpose.hpp"
#include "util/bit_ops.hpp"
#include "util/cpu_features.hpp"

namespace c64fft::analysis {

std::uint32_t PipelineModel::add_buffer(std::string buf_name,
                                        std::uint64_t elements, bool input,
                                        unsigned elem_bytes) {
  BufferModel b;
  b.name = std::move(buf_name);
  b.elements = elements;
  b.input = input;
  b.element_bytes = elem_bytes;
  buffers.push_back(std::move(b));
  return static_cast<std::uint32_t>(buffers.size() - 1);
}

std::size_t PipelineModel::total_tasks() const {
  std::size_t total = 0;
  for (const PhaseModel& p : phases) total += p.tasks.size();
  return total;
}

unsigned PipelineModel::buffer_element_bytes(std::uint32_t buffer) const {
  const unsigned override_bytes = buffers.at(buffer).element_bytes;
  return override_bytes != 0 ? override_bytes : element_bytes;
}

namespace {

/// Flops of one complex multiply (4 mul + 2 add) — the fused
/// twiddle-transpose charge per element.
constexpr std::uint64_t kCplxMulFlops = 6;
/// Per-bin charge of the real-FFT untangling pass (two half-sum
/// combines plus one twiddle multiply; trig evaluation not counted, as
/// everywhere else in the plan algebra).
constexpr std::uint64_t kUntangleFlopsPerBin = 20;

std::uint64_t plan_total_flops(const fft::FftPlan& plan) {
  std::uint64_t total = 0;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    total += plan.flops_per_task(s) * plan.tasks_per_stage();
  return total;
}

std::uint64_t twiddle_slot(std::uint64_t t, fft::TwiddleLayout layout,
                           unsigned tw_bits) {
  return layout == fft::TwiddleLayout::kBitReversed ? util::bit_reverse(t, tw_bits)
                                                    : t;
}

constexpr std::uint32_t kNoBuffer = 0xFFFFFFFFu;

/// One classic plan executed over `batch` transforms stored at
/// consecutive offsets of `data_buf` starting at `base`.
struct ClassicPhaseSpec {
  std::uint32_t data_buf = 0;
  std::uint64_t base = 0;
  std::uint64_t batch = 1;
  std::uint32_t twiddle_buf = kNoBuffer;
  fft::TwiddleLayout layout = fft::TwiddleLayout::kLinear;
  unsigned workers = 4;
  std::string prefix;
};

/// Appends the classic phases of one (possibly batched) plan execution:
/// the permutation phase exactly as the executor grains it — chunked
/// bit-reversal sweep (fft::bitrev_sweep_grain) for a single transform,
/// one whole-transform root codelet per transform for a batch — then one
/// phase per plan stage with the FftPlan footprint algebra. Stage phases
/// claim full coverage of the data buffer when the batch tiles it
/// exactly; the permutation phase never does (palindromic indices are
/// not touched).
void append_classic_phases(PipelineModel& m, const fft::FftPlan& plan,
                           const ClassicPhaseSpec& spec) {
  const std::uint64_t n = plan.size();
  const unsigned bits = plan.log2_size();
  const std::uint64_t tasks = plan.tasks_per_stage();
  const bool covers_buffer =
      spec.base == 0 && spec.batch * n == m.buffers.at(spec.data_buf).elements;

  auto bitrev_pairs = [&](PipelineTask& task, std::uint64_t t0,
                          std::uint64_t offset, std::uint64_t i_begin,
                          std::uint64_t i_end) {
    (void)t0;
    for (std::uint64_t i = i_begin; i < i_end; ++i) {
      const std::uint64_t j = util::bit_reverse(i, bits);
      if (i >= j) continue;
      task.reads.push_back({spec.data_buf, offset + i});
      task.reads.push_back({spec.data_buf, offset + j});
      task.writes.push_back({spec.data_buf, offset + i});
      task.writes.push_back({spec.data_buf, offset + j});
    }
  };

  if (spec.batch == 1) {
    PhaseModel phase;
    phase.name = spec.prefix + "bitrev";
    const fft::SweepGrain grain = fft::bitrev_sweep_grain(n, spec.workers);
    for (std::uint64_t c = 0; c < grain.chunks; ++c) {
      const std::uint64_t begin = c * grain.per;
      if (begin >= n) break;
      PipelineTask task;
      task.index = c;
      bitrev_pairs(task, c, spec.base, begin,
                   std::min<std::uint64_t>(n, begin + grain.per));
      phase.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(phase));
  } else {
    PhaseModel phase;
    phase.name = spec.prefix + "root";
    for (std::uint64_t b = 0; b < spec.batch; ++b) {
      PipelineTask task;
      task.index = b;
      bitrev_pairs(task, b, spec.base + b * n, 0, n);
      phase.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(phase));
  }

  const unsigned tw_bits = n / 2 > 1 ? util::ilog2(n / 2) : 0;
  std::vector<std::uint64_t> elems;
  std::vector<std::uint64_t> twiddles;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    PhaseModel phase;
    phase.name = spec.prefix + "stage" + std::to_string(s);
    if (covers_buffer) phase.full_coverage.push_back(spec.data_buf);
    for (std::uint64_t b = 0; b < spec.batch; ++b) {
      for (std::uint64_t t = 0; t < tasks; ++t) {
        PipelineTask task;
        task.index = b * tasks + t;
        plan.task_elements(s, t, elems);
        const std::uint64_t offset = spec.base + b * n;
        for (std::uint64_t e : elems) {
          task.reads.push_back({spec.data_buf, offset + e});
          task.writes.push_back({spec.data_buf, offset + e});
        }
        if (spec.twiddle_buf != kNoBuffer) {
          plan.task_twiddles(s, t, twiddles);
          for (std::uint64_t tw : twiddles)
            task.reads.push_back(
                {spec.twiddle_buf, twiddle_slot(tw, spec.layout, tw_bits)});
        }
        task.flops = plan.flops_per_task(s);
        phase.tasks.push_back(std::move(task));
      }
    }
    m.phases.push_back(std::move(phase));
  }
}

/// Appends one row-sweep phase of the four-step path: `row_count`
/// independent `plan.size()`-point transforms over consecutive rows of
/// `buf`, grained into the executor's worker chunks
/// (fft::four_step_sweep_grain). Each chunk streams its rows once per
/// sub-plan stage (the fused stage-0+permutation pass plus the remaining
/// stages), charged via `passes`.
void append_row_sweep(PipelineModel& m, const fft::FftPlan& plan,
                      std::uint32_t buf, std::uint64_t row_count,
                      unsigned workers, std::string phase_name) {
  const std::uint64_t row_len = plan.size();
  const std::uint64_t per_row_flops = plan_total_flops(plan);
  PhaseModel phase;
  phase.name = std::move(phase_name);
  phase.full_coverage.push_back(buf);
  const fft::SweepGrain grain = fft::four_step_sweep_grain(row_count, workers);
  for (std::uint64_t c = 0; c < grain.chunks; ++c) {
    const std::uint64_t r_begin = c * grain.per;
    if (r_begin >= row_count) break;
    const std::uint64_t r_end =
        std::min<std::uint64_t>(row_count, r_begin + grain.per);
    PipelineTask task;
    task.index = c;
    for (std::uint64_t r = r_begin; r < r_end; ++r) {
      for (std::uint64_t e = 0; e < row_len; ++e) {
        task.reads.push_back({buf, r * row_len + e});
        task.writes.push_back({buf, r * row_len + e});
      }
    }
    task.flops = (r_end - r_begin) * per_row_flops;
    task.passes = plan.stage_count();
    phase.tasks.push_back(std::move(task));
  }
  m.phases.push_back(std::move(phase));
}

/// Out-of-place blocked transpose of an R x C row-major `src` into a
/// C x R `dst`, one task per kTransposeTile tile; claims full coverage
/// of `dst`. `flops_per_elem` > 0 models the fused twiddle multiply.
void append_transpose(PipelineModel& m, std::uint32_t src, std::uint32_t dst,
                      std::uint64_t rows, std::uint64_t cols,
                      std::uint64_t flops_per_elem, std::string phase_name) {
  PhaseModel phase;
  phase.name = std::move(phase_name);
  phase.full_coverage.push_back(dst);
  std::uint64_t index = 0;
  fft::for_each_transpose_tile(
      rows, cols,
      [&](std::uint64_t r0, std::uint64_t rmax, std::uint64_t c0,
          std::uint64_t cmax) {
        PipelineTask task;
        task.index = index++;
        for (std::uint64_t r = r0; r < rmax; ++r)
          for (std::uint64_t c = c0; c < cmax; ++c) {
            task.reads.push_back({src, r * cols + c});
            task.writes.push_back({dst, c * rows + r});
          }
        task.flops = (rmax - r0) * (cmax - c0) * flops_per_elem;
        phase.tasks.push_back(std::move(task));
      });
  m.phases.push_back(std::move(phase));
}

/// In-place square transpose, one task per diagonal tile or mirror tile
/// pair (fft::for_each_transpose_tile_pair). No coverage claim: the
/// diagonal is never touched, and the diagonal tiles' own diagonals stay
/// in place — the check still proves the pair decomposition disjoint.
void append_transpose_inplace(PipelineModel& m, std::uint32_t buf,
                              std::uint64_t n, std::string phase_name) {
  PhaseModel phase;
  phase.name = std::move(phase_name);
  std::uint64_t index = 0;
  fft::for_each_transpose_tile_pair(
      n, [&](std::uint64_t r0, std::uint64_t rmax, std::uint64_t c0,
             std::uint64_t cmax) {
        PipelineTask task;
        task.index = index++;
        auto touch = [&](std::uint64_t e) {
          task.reads.push_back({buf, e});
          task.writes.push_back({buf, e});
        };
        if (r0 == c0) {
          for (std::uint64_t r = r0; r < rmax; ++r)
            for (std::uint64_t c = r + 1; c < cmax; ++c) {
              touch(r * n + c);
              touch(c * n + r);
            }
        } else {
          for (std::uint64_t r = r0; r < rmax; ++r)
            for (std::uint64_t c = c0; c < cmax; ++c) {
              touch(r * n + c);
              touch(c * n + r);
            }
        }
        phase.tasks.push_back(std::move(task));
      });
  m.phases.push_back(std::move(phase));
}

/// Total real flops of one hierarchical transform of size `n`: the leaf
/// sub-plan butterflies plus one twiddle multiply per point per level —
/// the recursion mirrors fft::hierarchical_split exactly.
std::uint64_t hier_total_flops(std::uint64_t n, unsigned radix_log2,
                               unsigned leaf_log2) {
  const fft::HierarchicalSplit split = fft::hierarchical_split(n, leaf_log2);
  const fft::FftPlan row_plan(
      split.n2, fft::validate_fft_shape(split.n2, radix_log2, true));
  std::uint64_t col;
  if (split.col_recursive) {
    col = hier_total_flops(split.n1, radix_log2, leaf_log2);
  } else {
    const fft::FftPlan col_plan(
        split.n1, fft::validate_fft_shape(split.n1, radix_log2, true));
    col = plan_total_flops(col_plan);
  }
  return split.n2 * col + n * kCplxMulFlops +
         split.n1 * plan_total_flops(row_plan);
}

/// How many times one hierarchical transform of size `n` streams its own
/// footprint end to end: the gather pass, the column transform (leaf
/// stages, or the inner recursion's full pass count), and the fused tail
/// (row sub-plan stages bracketed by the twiddle-gather and the
/// writeback-transpose). The condensed multi-level column phase charges
/// this via PipelineTask::passes.
std::uint64_t hier_stream_passes(std::uint64_t n, unsigned radix_log2,
                                 unsigned leaf_log2) {
  const fft::HierarchicalSplit split = fft::hierarchical_split(n, leaf_log2);
  const fft::FftPlan row_plan(
      split.n2, fft::validate_fft_shape(split.n2, radix_log2, true));
  std::uint64_t col;
  if (split.col_recursive) {
    col = hier_stream_passes(split.n1, radix_log2, leaf_log2);
  } else {
    const fft::FftPlan col_plan(
        split.n1, fft::validate_fft_shape(split.n1, radix_log2, true));
    col = col_plan.stage_count();
  }
  return 1 + col + row_plan.stage_count() + 2;
}

/// The movement share of hier_stream_passes: the gather pass, the fused
/// tail's gather-in + writeback-out, and the inner recursion's own
/// movement passes.
std::uint64_t hier_movement_passes(std::uint64_t n, unsigned leaf_log2) {
  const fft::HierarchicalSplit split = fft::hierarchical_split(n, leaf_log2);
  const std::uint64_t col =
      split.col_recursive ? hier_movement_passes(split.n1, leaf_log2) : 0;
  return 1 + col + 2;
}

PipelineModel make_base(std::string name, std::uint64_t n, unsigned radix_log2,
                        const PipelineBuildOptions& opts) {
  PipelineModel m;
  m.name = std::move(name);
  m.n = n;
  m.radix_log2 = radix_log2;
  m.element_bytes = opts.element_bytes;
  // The id of the table the executor would dispatch to right now; both
  // precisions share one active level, so either table's id works.
  m.kernel_isa = fft::kernels::active_kernels<double>().id;
  return m;
}

}  // namespace

PipelineModel build_classic_pipeline(const fft::FftPlan& plan,
                                     const PipelineBuildOptions& opts,
                                     std::string name) {
  PipelineModel m = make_base(name.empty() ? "classic" : std::move(name),
                              plan.size(), plan.radix_log2(), opts);
  ClassicPhaseSpec spec;
  spec.data_buf = m.add_buffer("data", plan.size(), /*input=*/true);
  spec.twiddle_buf =
      m.add_buffer("twiddles", plan.size() / 2, /*input=*/true);
  spec.layout = opts.layout;
  spec.workers = opts.workers;
  append_classic_phases(m, plan, spec);
  return m;
}

PipelineModel build_batch_pipeline(const fft::FftPlan& plan,
                                   std::uint64_t batch,
                                   const PipelineBuildOptions& opts,
                                   std::string name) {
  if (batch < 1) throw std::invalid_argument("build_batch_pipeline: batch >= 1");
  PipelineModel m = make_base(name.empty() ? "batch" : std::move(name),
                              plan.size(), plan.radix_log2(), opts);
  ClassicPhaseSpec spec;
  spec.data_buf = m.add_buffer("data", batch * plan.size(), /*input=*/true);
  spec.twiddle_buf =
      m.add_buffer("twiddles", plan.size() / 2, /*input=*/true);
  spec.batch = batch;
  spec.layout = opts.layout;
  spec.workers = opts.workers;
  append_classic_phases(m, plan, spec);
  return m;
}

PipelineModel build_four_step_pipeline(std::uint64_t n, unsigned radix_log2,
                                       const PipelineBuildOptions& opts,
                                       std::string name) {
  const fft::FourStepSplit split = fft::four_step_split(n);
  const fft::FftPlan col_plan(
      split.n1, fft::validate_fft_shape(split.n1, radix_log2, true));
  const fft::FftPlan row_plan(
      split.n2, fft::validate_fft_shape(split.n2, radix_log2, true));

  PipelineModel m = make_base(name.empty() ? "four-step" : std::move(name), n,
                              radix_log2, opts);
  const std::uint32_t data = m.add_buffer("data", n, /*input=*/true);
  const std::uint32_t scratch = m.add_buffer("scratch", n, /*input=*/false);

  // Pass 1: data (n1 x n2) -> scratch (n2 x n1).
  append_transpose(m, data, scratch, split.n1, split.n2, 0, "transpose");
  // Pass 2: n2 rows of n1-point FFTs over scratch.
  append_row_sweep(m, col_plan, scratch, split.n2, opts.workers, "col-sweep");
  // Pass 3: fused twiddle-transpose scratch (n2 x n1) -> data (n1 x n2).
  append_transpose(m, scratch, data, split.n2, split.n1, kCplxMulFlops,
                   "twiddle-transpose");
  // Pass 4: n1 rows of n2-point FFTs over data.
  append_row_sweep(m, row_plan, data, split.n1, opts.workers, "row-sweep");
  // Pass 5: final transpose back to natural order.
  if (split.n1 == split.n2) {
    append_transpose_inplace(m, data, split.n1, "final-transpose");
  } else {
    append_transpose(m, data, scratch, split.n1, split.n2, 0,
                     "final-transpose");
    PhaseModel copy;
    copy.name = "copy-back";
    copy.full_coverage.push_back(data);
    PipelineTask task;  // std::copy is one serial pass in the executor
    for (std::uint64_t e = 0; e < n; ++e) {
      task.reads.push_back({scratch, e});
      task.writes.push_back({data, e});
    }
    copy.tasks.push_back(std::move(task));
    m.phases.push_back(std::move(copy));
  }
  return m;
}

PipelineModel build_hierarchical_pipeline(std::uint64_t n, unsigned radix_log2,
                                          const PipelineBuildOptions& opts,
                                          std::string name) {
  const unsigned leaf =
      opts.hier_leaf_log2 != 0
          ? opts.hier_leaf_log2
          : fft::hierarchical_leaf_log2(util::cache_info().l2_bytes,
                                        opts.element_bytes);
  const fft::HierarchicalSplit split = fft::hierarchical_split(n, leaf);
  const std::uint64_t n1 = split.n1;
  const std::uint64_t n2 = split.n2;
  const fft::FftPlan row_plan(
      n2, fft::validate_fft_shape(n2, radix_log2, true));

  PipelineModel m = make_base(
      name.empty() ? "hierarchical" : std::move(name), n, radix_log2, opts);
  const std::uint32_t data = m.add_buffer("data", n, /*input=*/true);
  const std::uint32_t s = m.add_buffer("gather", n, /*input=*/false);

  // The dependency-counted block grain the runtime schedules — derived
  // from the same hook (executor hierarchical_grain), so the model's
  // tasks are the pipeline's actual schedulable units, not a finer
  // fiction.
  const fft::HierarchicalGrain grain = fft::hierarchical_grain(
      n1, n2, opts.workers, opts.element_bytes, util::cache_info().l2_bytes,
      opts.hier_block_rows);

  if (!split.col_recursive) {
    const fft::FftPlan col_plan(
        n1, fft::validate_fft_shape(n1, radix_log2, true));
    // T1: gather-transpose block i of data columns [c0b, cend) into
    // contiguous rows of the gather matrix.
    PhaseModel gather;
    gather.name = "gather";
    gather.full_coverage.push_back(s);
    for (std::uint64_t i = 0; i < grain.blocks1; ++i) {
      const std::uint64_t c0b = i * grain.block_rows1;
      const std::uint64_t cend =
          std::min(n2, c0b + grain.block_rows1);
      PipelineTask task;
      task.index = i;
      for (std::uint64_t r = 0; r < n1; ++r)
        for (std::uint64_t c = c0b; c < cend; ++c) {
          task.reads.push_back({data, r * n2 + c});
          task.writes.push_back({s, c * n1 + r});
        }
      gather.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(gather));

    // T2: in-place column FFTs over the block's rows of the gather
    // matrix, one streaming pass per sub-plan stage.
    PhaseModel col;
    col.name = "col-sweep";
    col.full_coverage.push_back(s);
    const std::uint64_t per_row_flops = plan_total_flops(col_plan);
    for (std::uint64_t i = 0; i < grain.blocks1; ++i) {
      const std::uint64_t r0b = i * grain.block_rows1;
      const std::uint64_t rend =
          std::min(n2, r0b + grain.block_rows1);
      PipelineTask task;
      task.index = i;
      for (std::uint64_t r = r0b; r < rend; ++r)
        for (std::uint64_t e = 0; e < n1; ++e) {
          task.reads.push_back({s, r * n1 + e});
          task.writes.push_back({s, r * n1 + e});
        }
      task.flops = (rend - r0b) * per_row_flops;
      task.passes = col_plan.stage_count();
      col.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(col));
  } else {
    // Multi-level tail: the runtime gathers serially, then runs the whole
    // inner hierarchical pipeline once per row of the gather matrix
    // before any T4 seeds. Condensed here to one transpose phase plus a
    // per-row recursion phase: each task owns its row exactly (the
    // coverage input), and the inner levels' repeated streaming of that
    // row is charged through `passes`. Inner gather scratch is
    // cache-resident by the leaf policy and, like the per-worker T4
    // panels, not modelled.
    append_transpose(m, data, s, n1, n2, 0, "gather");
    PhaseModel col;
    col.name = "col-recursive";
    col.full_coverage.push_back(s);
    const std::uint64_t per_row_flops =
        hier_total_flops(n1, radix_log2, leaf);
    const std::uint64_t per_row_passes =
        hier_stream_passes(n1, radix_log2, leaf);
    for (std::uint64_t r = 0; r < n2; ++r) {
      PipelineTask task;
      task.index = r;
      for (std::uint64_t e = 0; e < n1; ++e) {
        task.reads.push_back({s, r * n1 + e});
        task.writes.push_back({s, r * n1 + e});
      }
      task.flops = per_row_flops;
      task.passes = per_row_passes;
      task.movement_passes = hier_movement_passes(n1, leaf);
      col.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(col));
  }

  // T4: the fused tail — twiddle-gather the block's columns of the
  // gather matrix into the worker panel, row FFTs over the hot panel,
  // writeback-transpose into natural output order. One streaming pass
  // per row sub-plan stage plus the gather-in and writeback-out.
  PhaseModel fused;
  fused.name = "fused-row";
  fused.full_coverage.push_back(data);
  const std::uint64_t per_row_flops = plan_total_flops(row_plan);
  for (std::uint64_t j = 0; j < grain.blocks2; ++j) {
    const std::uint64_t r0b = j * grain.block_rows2;
    const std::uint64_t rend = std::min(n1, r0b + grain.block_rows2);
    PipelineTask task;
    task.index = j;
    for (std::uint64_t r = 0; r < n2; ++r)
      for (std::uint64_t c = r0b; c < rend; ++c)
        task.reads.push_back({s, r * n1 + c});
    for (std::uint64_t c = 0; c < n2; ++c)
      for (std::uint64_t r = r0b; r < rend; ++r)
        task.writes.push_back({data, c * n1 + r});
    task.flops = (rend - r0b) * (n2 * kCplxMulFlops + per_row_flops);
    task.passes = row_plan.stage_count() + 2;
    task.movement_passes = 2;  // the gather-in and the writeback-out
    fused.tasks.push_back(std::move(task));
  }
  m.phases.push_back(std::move(fused));
  return m;
}

PipelineModel build_mixed_radix_pipeline(std::uint64_t n,
                                         const PipelineBuildOptions& opts,
                                         std::string name) {
  const fft::MixedRadixPlan plan(n);  // throws unless 2 <= n, 7-smooth
  PipelineModel m = make_base(name.empty() ? "mixed-radix" : std::move(name),
                              n, /*radix_log2=*/1, opts);
  const std::uint32_t data = m.add_buffer("data", n, /*input=*/true);
  const std::uint32_t tw =
      m.add_buffer("twiddles", plan.twiddle_count(), /*input=*/true);
  const std::uint32_t scratch = m.add_buffer("scratch", n, /*input=*/false);

  // Digit-reversal gather, grained exactly like the runtime phase:
  // scratch[p] = data[perm[p]] over bitrev_sweep_grain chunks.
  {
    PhaseModel phase;
    phase.name = "permute";
    phase.full_coverage.push_back(scratch);
    const auto perm = plan.permutation();
    const fft::SweepGrain grain = fft::bitrev_sweep_grain(n, opts.workers);
    for (std::uint64_t c = 0; c < grain.chunks; ++c) {
      const std::uint64_t begin = c * grain.per;
      if (begin >= n) break;
      const std::uint64_t end = std::min<std::uint64_t>(n, begin + grain.per);
      PipelineTask task;
      task.index = c;
      for (std::uint64_t p = begin; p < end; ++p) {
        task.reads.push_back({data, perm[p]});
        task.writes.push_back({scratch, p});
      }
      phase.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(phase));
  }

  // One phase per stage over its n/r butterflies, chunked to the
  // executor's workers*4 cap. Butterfly g = (b, j) touches the r
  // elements b*L + j + u*L_p and reads the r-1 flat twiddles at
  // twiddle_offset + j*(r-1) + (u-1) — the exact runner index algebra.
  const std::uint32_t stages = plan.stage_count();
  for (std::uint32_t s = 0; s < stages; ++s) {
    const fft::MixedRadixStage& stage = plan.stages()[s];
    const std::uint64_t r = stage.radix;
    const std::uint64_t lp = stage.prev_len;
    const std::uint64_t g_count = n / r;
    const std::uint64_t chunks =
        std::min<std::uint64_t>(g_count, std::uint64_t{opts.workers} * 4);
    const std::uint64_t per = util::ceil_div(g_count, chunks);
    const std::uint32_t src = (s == 0) ? scratch : data;
    PhaseModel phase;
    phase.name = "stage" + std::to_string(s);
    phase.full_coverage.push_back(data);
    for (std::uint64_t c = 0; c < chunks; ++c) {
      const std::uint64_t g_begin = c * per;
      if (g_begin >= g_count) break;
      const std::uint64_t g_end =
          std::min<std::uint64_t>(g_count, g_begin + per);
      PipelineTask task;
      task.index = c;
      for (std::uint64_t g = g_begin; g < g_end; ++g) {
        const std::uint64_t b = g / lp;
        const std::uint64_t j = g % lp;
        const std::uint64_t base = b * stage.len + j;
        for (std::uint64_t u = 0; u < r; ++u) {
          task.reads.push_back({src, base + u * lp});
          task.writes.push_back({data, base + u * lp});
        }
        for (std::uint64_t u = 1; u < r; ++u)
          task.reads.push_back(
              {tw, stage.twiddle_offset + j * (r - 1) + (u - 1)});
      }
      task.flops =
          (g_end - g_begin) * fft::MixedRadixPlan::butterfly_flops(stage.radix);
      phase.tasks.push_back(std::move(task));
    }
    m.phases.push_back(std::move(phase));
  }
  return m;
}

PipelineModel build_bluestein_pipeline(std::uint64_t n, unsigned radix_log2,
                                       const PipelineBuildOptions& opts,
                                       std::string name) {
  if (n < 2)
    throw std::invalid_argument("build_bluestein_pipeline: n >= 2 required");
  const std::uint64_t conv_n = fft::bluestein_fft_size(n);
  const fft::FftPlan conv_plan(
      conv_n, fft::validate_fft_shape(conv_n, radix_log2, true));

  PipelineModel m = make_base(name.empty() ? "bluestein" : std::move(name), n,
                              conv_plan.radix_log2(), opts);
  const std::uint32_t data = m.add_buffer("data", n, /*input=*/true);
  const std::uint32_t chirp = m.add_buffer("chirp", n, /*input=*/true);
  const std::uint32_t bfilter =
      m.add_buffer("chirp-fft", conv_n, /*input=*/true);
  const std::uint32_t conv = m.add_buffer("conv", conv_n, /*input=*/false);

  // Modulate + zero-fill: one serial pass (the executor runs it inline —
  // O(M) noise against the inner FFTs it brackets).
  {
    PhaseModel phase;
    phase.name = "modulate";
    phase.full_coverage.push_back(conv);
    PipelineTask task;
    for (std::uint64_t j = 0; j < n; ++j) {
      task.reads.push_back({data, j});
      task.reads.push_back({chirp, j});
      task.writes.push_back({conv, j});
    }
    for (std::uint64_t j = n; j < conv_n; ++j)
      task.writes.push_back({conv, j});
    task.flops = n * kCplxMulFlops;
    phase.tasks.push_back(std::move(task));
    m.phases.push_back(std::move(phase));
  }

  ClassicPhaseSpec spec;
  spec.data_buf = conv;
  spec.twiddle_buf = m.add_buffer("twiddles", conv_n / 2, /*input=*/true);
  spec.layout = opts.layout;
  spec.workers = opts.workers;
  spec.prefix = "fwd-";
  append_classic_phases(m, conv_plan, spec);

  // Pointwise convolution by the precomputed chirp-filter spectrum.
  {
    PhaseModel phase;
    phase.name = "pointwise";
    phase.full_coverage.push_back(conv);
    PipelineTask task;
    for (std::uint64_t j = 0; j < conv_n; ++j) {
      task.reads.push_back({conv, j});
      task.reads.push_back({bfilter, j});
      task.writes.push_back({conv, j});
    }
    task.flops = conv_n * kCplxMulFlops;
    phase.tasks.push_back(std::move(task));
    m.phases.push_back(std::move(phase));
  }

  spec.prefix = "inv-";
  append_classic_phases(m, conv_plan, spec);

  // Demodulate back into the public buffer, folding in the inner 1/M.
  {
    PhaseModel phase;
    phase.name = "demodulate";
    phase.full_coverage.push_back(data);
    PipelineTask task;
    for (std::uint64_t j = 0; j < n; ++j) {
      task.reads.push_back({conv, j});
      task.reads.push_back({chirp, j});
      task.writes.push_back({data, j});
    }
    task.flops = n * (kCplxMulFlops + 2);
    phase.tasks.push_back(std::move(task));
    m.phases.push_back(std::move(phase));
  }
  return m;
}

PipelineModel build_fft2d_pipeline(std::uint64_t rows, std::uint64_t cols,
                                   unsigned radix_log2,
                                   const PipelineBuildOptions& opts,
                                   std::string name) {
  const fft::Fft2dShape shape =
      fft::fft2d_shape(rows * cols, rows, cols, radix_log2);
  const fft::FftPlan row_plan(cols, shape.row_radix_log2);
  const fft::FftPlan col_plan(rows, shape.col_radix_log2);

  PipelineModel m = make_base(name.empty() ? "fft2d" : std::move(name),
                              rows * cols, radix_log2, opts);
  const std::uint32_t data = m.add_buffer("data", rows * cols, /*input=*/true);
  const std::uint32_t tw_row =
      m.add_buffer("twiddles-row", cols / 2, /*input=*/true);

  // Row pass: the executor's batch path, one transform per matrix row.
  ClassicPhaseSpec row_spec;
  row_spec.data_buf = data;
  row_spec.twiddle_buf = tw_row;
  row_spec.batch = rows;
  row_spec.layout = opts.layout;
  row_spec.workers = opts.workers;
  row_spec.prefix = "rows-";
  append_classic_phases(m, row_plan, row_spec);

  const std::uint32_t tw_col =
      rows == cols ? tw_row : m.add_buffer("twiddles-col", rows / 2, true);
  ClassicPhaseSpec col_spec;
  col_spec.twiddle_buf = tw_col;
  col_spec.batch = cols;
  col_spec.layout = opts.layout;
  col_spec.workers = opts.workers;
  col_spec.prefix = "cols-";

  if (shape.square) {
    append_transpose_inplace(m, data, rows, "transpose");
    col_spec.data_buf = data;
    append_classic_phases(m, col_plan, col_spec);
    append_transpose_inplace(m, data, rows, "transpose-back");
  } else {
    const std::uint32_t scratch =
        m.add_buffer("scratch", rows * cols, /*input=*/false);
    append_transpose(m, data, scratch, rows, cols, 0, "transpose");
    col_spec.data_buf = scratch;
    append_classic_phases(m, col_plan, col_spec);
    append_transpose(m, scratch, data, cols, rows, 0, "transpose-back");
  }
  return m;
}

PipelineModel build_real_fft_pipeline(std::uint64_t n, unsigned radix_log2,
                                      const PipelineBuildOptions& opts,
                                      std::string name) {
  const fft::RealFftShape shape = fft::real_forward_shape(n, radix_log2);
  PipelineModel m = make_base(name.empty() ? "real" : std::move(name), n,
                              radix_log2, opts);
  // The input is real scalars: half the byte width of the complex
  // buffers, so the byte-level bank histogram stays honest.
  const std::uint32_t signal =
      m.add_buffer("signal", n, /*input=*/true, opts.element_bytes / 2);
  const std::uint32_t packed =
      m.add_buffer("packed", shape.half, /*input=*/false);
  const std::uint32_t out =
      m.add_buffer("spectrum", shape.half + 1, /*input=*/false);

  // Pack: one serial pass interleaving even/odd samples.
  {
    PhaseModel phase;
    phase.name = "pack";
    phase.full_coverage.push_back(packed);
    PipelineTask task;
    for (std::uint64_t i = 0; i < shape.half; ++i) {
      task.reads.push_back({signal, 2 * i});
      task.reads.push_back({signal, 2 * i + 1});
      task.writes.push_back({packed, i});
    }
    phase.tasks.push_back(std::move(task));
    m.phases.push_back(std::move(phase));
  }

  if (shape.half >= 2) {
    const fft::FftPlan half_plan(shape.half, shape.radix_log2);
    ClassicPhaseSpec spec;
    spec.data_buf = packed;
    spec.twiddle_buf = m.add_buffer("twiddles", shape.half / 2, true);
    spec.layout = opts.layout;
    spec.workers = opts.workers;
    spec.prefix = "half-";
    append_classic_phases(m, half_plan, spec);
  }

  // Untangle: one serial pass over the half+1 output bins; bin k reads
  // the conjugate-mirror pair of packed bins the kernel reads.
  {
    PhaseModel phase;
    phase.name = "untangle";
    phase.full_coverage.push_back(out);
    PipelineTask task;
    for (std::uint64_t k = 0; k <= shape.half; ++k) {
      const auto src = fft::real_unpack_sources(k, shape.half);
      task.reads.push_back({packed, src[0]});
      task.reads.push_back({packed, src[1]});
      task.writes.push_back({out, k});
    }
    task.flops = (shape.half + 1) * kUntangleFlopsPerBin;
    phase.tasks.push_back(std::move(task));
    m.phases.push_back(std::move(phase));
  }
  return m;
}

}  // namespace c64fft::analysis
