#pragma once
// 2-D FFT on the simulated C64 (extension; the paper's predecessor work
// covered 1-D and 2-D on this chip). Row-column decomposition in three
// passes — row FFTs, transpose, column FFTs — with a barrier between
// passes (Saybasili-style two-level parallelism from the related work).
//
// The transpose pass is where the paper's theme reappears: reading a
// column of a row-major matrix strides by cols*16 bytes, a multiple of
// the 64 B interleave for any cols >= 4 — so a naive transpose pins every
// column read to a single DRAM bank, exactly like the twiddle array of
// the 1-D study. The tiled transpose breaks the pathology by touching
// `tile` consecutive columns (= different banks) per task.

#include <cstdint>

#include "c64/config.hpp"
#include "c64/engine.hpp"

namespace c64fft::simfft {

struct Fft2dSimOptions {
  std::uint64_t rows = 256;
  std::uint64_t cols = 256;
  /// false = naive transpose (one task per output row, column-strided
  /// reads); true = tiled transpose (tile x tile blocks).
  bool tiled_transpose = true;
  /// Tile edge in elements (tile*16 B <= one interleave line by default).
  unsigned tile = 4;
};

struct Fft2dSimResult {
  c64::SimResult row_pass;
  c64::SimResult transpose;
  c64::SimResult col_pass;
  std::uint64_t total_cycles = 0;  ///< incl. two inter-pass barriers
  double gflops = 0.0;
  /// max/mean per-bank service occupancy of the transpose pass (the
  /// pathology indicator: ~4 for naive, ~1 for tiled).
  double transpose_bank_imbalance = 0.0;
};

/// Simulate a rows x cols complex 2-D FFT (both powers of two >= 4).
Fft2dSimResult run_fft2d_sim(const c64::ChipConfig& cfg, const Fft2dSimOptions& opts);

}  // namespace c64fft::simfft
