#pragma once
// Codelet-size auto-tuning — the procedure behind the paper's Section V-A
// choice of 64-point codelets: the memory-bound peak grows with the
// codelet size (fewer twiddle loads per point), so pick the largest size
// whose working set still fits the per-TU scratchpad.

#include "c64/config.hpp"

namespace c64fft::simfft {

/// Working-set bytes of one 2^r-point codelet: 2^r in-place data points
/// plus up to 2^r - 1 twiddles, 16 B each (matches FootprintBuilder's
/// spill rule).
std::uint64_t codelet_working_set_bytes(unsigned radix_log2);

/// Largest radix_log2 in [1, max_radix_log2] whose codelet fits the
/// scratchpad; with the default ChipConfig this returns 6 (64 points).
unsigned best_radix_log2(const c64::ChipConfig& cfg, unsigned max_radix_log2 = 8);

}  // namespace c64fft::simfft
