#pragma once
// SimProgram implementations of the paper's three algorithms for the
// discrete-event C64 model. These mirror the host drivers in
// src/fft/variants.cpp, but instead of computing butterflies they emit
// each codelet's memory footprint and cycle cost to the engine.

#include <cstdint>
#include <deque>
#include <vector>

#include "c64/engine.hpp"
#include "fft/ordering.hpp"
#include "simfft/footprint.hpp"

namespace c64fft::simfft {

/// Shared machinery: counters, ready pool, spec filling.
class FftSimProgramBase : public c64::SimProgram {
 public:
  FftSimProgramBase(const FootprintBuilder& fp, const c64::ChipConfig& cfg);

  bool finished() const override { return completed_ == total_; }
  std::uint64_t completed() const noexcept { return completed_; }

 protected:
  struct Ready {
    std::uint32_t stage;
    std::uint64_t task;
  };

  void fill_spec(std::uint32_t stage, std::uint64_t task, c64::TaskSpec& out,
                 std::uint32_t start_overhead, std::uint32_t finish_overhead) const;

  // Pool helpers (LIFO/FIFO over a deque).
  void push_ready(Ready r) { ready_.push_back(r); }
  bool pop_ready(codelet::PoolPolicy policy, Ready& out);
  std::size_t ready_size() const noexcept { return ready_.size(); }

  // Dependency propagation: record completion of (stage, task) and push
  // its child sibling group if it became ready. `last_propagated` caps
  // propagation (Alg. 3 phase 1). Pushes members in ascending order.
  void propagate(std::uint32_t stage, std::uint64_t task, std::uint32_t last_propagated);

  void reset_counters();

  /// (stage, task) <-> dense 64-bit id for the engine's task_id field.
  std::uint64_t encode(std::uint32_t stage, std::uint64_t task) const {
    return static_cast<std::uint64_t>(stage) * fp_.plan().tasks_per_stage() + task;
  }
  Ready decode(std::uint64_t id) const {
    return {static_cast<std::uint32_t>(id / fp_.plan().tasks_per_stage()),
            id % fp_.plan().tasks_per_stage()};
  }

  const FootprintBuilder& fp_;
  const c64::ChipConfig& cfg_;
  std::uint64_t total_;
  std::uint64_t completed_ = 0;

 private:
  std::deque<Ready> ready_;
  std::vector<std::vector<std::uint32_t>> counters_;  // per consumer stage
  std::vector<std::uint64_t> members_buf_;
};

/// Algorithm 1: one barrier per stage. The parallel-for distributes tasks
/// statically and cyclically (TU t runs t, t+P, t+2P, ... of each stage),
/// as in the coarse-grain C64 implementations the paper baselines
/// against — so the coarse version carries the wave-quantisation and
/// imbalance cost that dynamic fine-grain scheduling removes.
class CoarseSimProgram final : public FftSimProgramBase {
 public:
  CoarseSimProgram(const FootprintBuilder& fp, const c64::ChipConfig& cfg);

  c64::PopResult next_task(unsigned tu, std::uint64_t now, c64::TaskSpec& out,
                           std::uint64_t& wake_at) override;
  void task_done(unsigned tu, std::uint64_t task_id, std::uint64_t now) override;

 private:
  std::uint32_t stage_ = 0;
  std::vector<std::uint64_t> next_of_tu_;  // per-TU static cursor
  std::uint64_t done_in_stage_ = 0;
  bool in_barrier_ = false;
  std::uint64_t release_at_ = 0;
};

/// Algorithm 2: barrier-free; initial order + pool policy are free.
class FineSimProgram : public FftSimProgramBase {
 public:
  FineSimProgram(const FootprintBuilder& fp, const c64::ChipConfig& cfg,
                 const fft::FineOrdering& ordering);

  c64::PopResult next_task(unsigned tu, std::uint64_t now, c64::TaskSpec& out,
                           std::uint64_t& wake_at) override;
  void task_done(unsigned tu, std::uint64_t task_id, std::uint64_t now) override;

 private:
  codelet::PoolPolicy policy_;
};

/// Algorithm 3: fine-grain early stages, one barrier, then the last two
/// stages with sibling-group LIFO seeding.
class GuidedSimProgram : public FftSimProgramBase {
 public:
  GuidedSimProgram(const FootprintBuilder& fp, const c64::ChipConfig& cfg);

  c64::PopResult next_task(unsigned tu, std::uint64_t now, c64::TaskSpec& out,
                           std::uint64_t& wake_at) override;
  void task_done(unsigned tu, std::uint64_t task_id, std::uint64_t now) override;

 private:
  void seed_phase2();

  bool degenerate_;           ///< < 3 stages: behaves like fine/LIFO
  std::uint32_t last_early_;  ///< last stage of phase 1
  std::uint64_t phase1_total_;
  std::uint64_t phase1_done_ = 0;
  bool in_barrier_ = false;
  bool phase2_seeded_ = false;
  std::uint64_t release_at_ = 0;
};

}  // namespace c64fft::simfft
