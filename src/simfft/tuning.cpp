#include "simfft/tuning.hpp"

#include <stdexcept>

namespace c64fft::simfft {

std::uint64_t codelet_working_set_bytes(unsigned radix_log2) {
  const std::uint64_t r = std::uint64_t{1} << radix_log2;
  return (r + (r - 1)) * 16;
}

unsigned best_radix_log2(const c64::ChipConfig& cfg, unsigned max_radix_log2) {
  if (max_radix_log2 == 0) throw std::invalid_argument("best_radix_log2: zero max");
  unsigned best = 1;
  for (unsigned r = 1; r <= max_radix_log2; ++r) {
    if (codelet_working_set_bytes(r) <= cfg.scratchpad_bytes) best = r;
  }
  // The memory-bound peak 5*r*R*BW/((3R-1)*16) is strictly increasing in
  // r, so the largest fitting radix maximises it.
  return best;
}

}  // namespace c64fft::simfft
