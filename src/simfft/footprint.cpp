#include "simfft/footprint.hpp"

#include <cassert>

#include "util/bit_ops.hpp"

namespace c64fft::simfft {

FootprintBuilder::FootprintBuilder(const fft::FftPlan& plan, const c64::ChipConfig& cfg,
                                   fft::TwiddleLayout layout, std::uint64_t data_base,
                                   std::uint64_t twiddle_base, unsigned element_bytes)
    : plan_(plan),
      cfg_(cfg),
      map_(cfg),
      layout_(layout),
      data_base_(data_base),
      twiddle_base_(twiddle_base),
      elem_(element_bytes) {
  const std::uint64_t half = plan.size() / 2;
  twiddle_bits_ = half > 1 ? util::ilog2(half) : 0;
  // Working set of one task: R in-place points + the worst-case twiddle
  // count over the stages.
  std::uint64_t worst_tw = 0;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s)
    worst_tw = std::max(worst_tw, plan.twiddles_per_task(s));
  spill_ = (plan.radix() + worst_tw) * elem_ > cfg.scratchpad_bytes;
}

void FootprintBuilder::flush(c64::TaskSpec& out, Run& run) {
  if (run.bank < 0) return;
  c64::MemRequest req;
  req.bank = static_cast<std::uint16_t>(run.bank);
  req.bytes = run.bytes;
  req.pre_issue_cycles = static_cast<std::uint16_t>(std::min<std::uint32_t>(run.pre_issue, 0xFFFF));
  out.requests.push_back(req);
  run = Run{};
}

void FootprintBuilder::add_element(c64::TaskSpec& out, Run& run, std::uint64_t addr,
                                   std::uint32_t pre_issue) const {
  // Merge only address-contiguous accesses within one interleave line:
  // C64's multi-word loads cover contiguous words, so a strided gather or
  // a scattered twiddle sequence stays one request per element.
  const int bank = static_cast<int>(map_.bank_of(addr));
  const bool contiguous = run.bank == bank && addr == run.next_addr &&
                          map_.bank_of(addr + elem_ - 1) == static_cast<unsigned>(bank);
  if (contiguous && run.bytes + elem_ <= cfg_.coalesce_limit) {
    run.bytes += elem_;
    run.pre_issue += pre_issue;
    run.next_addr = addr + elem_;
    return;
  }
  flush(out, run);
  run.bank = bank;
  run.bytes = elem_;
  run.pre_issue = pre_issue;
  run.next_addr = addr + elem_;
}

void FootprintBuilder::append_data_pass(std::uint32_t stage, std::uint64_t task,
                                        c64::TaskSpec& out, Run& run) const {
  const fft::StageInfo& st = plan_.stage(stage);
  for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
    const std::uint64_t base = plan_.chain_base(stage, task, c);
    for (std::uint64_t q = 0; q < st.chain_len; ++q)
      add_element(out, run, data_base_ + (base + q * st.chain_stride) * elem_, 0);
  }
}

void FootprintBuilder::append_twiddles(std::uint32_t stage, std::uint64_t task,
                                       c64::TaskSpec& out, Run& run) const {
  const fft::StageInfo& st = plan_.stage(stage);
  const std::uint32_t hash_cost =
      layout_ == fft::TwiddleLayout::kBitReversed ? cfg_.hash_cost(twiddle_bits_) : 0;
  for (std::uint32_t v = 0; v < st.levels; ++v) {
    const std::uint64_t half = std::uint64_t{1} << v;
    for (std::uint64_t c = 0; c < st.chains_per_task; ++c) {
      for (std::uint64_t p = 0; p < half; ++p) {
        const std::uint64_t t = plan_.twiddle_index(stage, task, v, c * st.chain_len + p);
        const std::uint64_t slot =
            layout_ == fft::TwiddleLayout::kBitReversed ? util::bit_reverse(t, twiddle_bits_) : t;
        add_element(out, run, twiddle_base_ + slot * elem_, hash_cost);
      }
    }
  }
}

void FootprintBuilder::build(std::uint32_t stage, std::uint64_t task,
                             c64::TaskSpec& out) const {
  out.requests.clear();
  Run run;

  // Loads: the data gather then the twiddles (all into scratchpad);
  // a spilling task re-gathers its data once more mid-computation.
  append_data_pass(stage, task, out, run);
  append_twiddles(stage, task, out, run);
  if (spill_) append_data_pass(stage, task, out, run);
  flush(out, run);
  out.first_store = static_cast<std::uint32_t>(out.requests.size());

  // Stores: the data scatter (twice when spilling: intermediate writeback).
  append_data_pass(stage, task, out, run);
  if (spill_) append_data_pass(stage, task, out, run);
  flush(out, run);

  const double flops = static_cast<double>(plan_.flops_per_task(stage));
  out.compute_cycles =
      static_cast<std::uint64_t>(flops / cfg_.flops_per_cycle_per_tu) +
      cfg_.task_overhead_cycles;
}

std::uint64_t FootprintBuilder::bytes_per_task(std::uint32_t stage) const {
  const std::uint64_t data = plan_.radix() * elem_;
  const std::uint64_t tw = plan_.twiddles_per_task(stage) * elem_;
  const std::uint64_t passes = spill_ ? 2 : 1;
  return passes * data * 2 + tw;  // loads+stores of data, one twiddle pass
}

}  // namespace c64fft::simfft
