#include "simfft/analytic.hpp"

#include <algorithm>
#include <cmath>

namespace c64fft::simfft {

AnalyticModel::AnalyticModel(const FootprintBuilder& fp, const c64::ChipConfig& cfg)
    : cfg_(cfg) {
  const fft::FftPlan& plan = fp.plan();
  tasks_ = plan.tasks_per_stage();
  bank_occupancy_.assign(cfg.dram_banks, 0.0);

  c64::TaskSpec spec;
  for (std::uint32_t s = 0; s < plan.stage_count(); ++s) {
    // One representative codelet per stage gives the per-request shape;
    // the bank census below still sums every codelet exactly.
    fp.build(s, 0, spec);
    StageEstimate est;
    est.stage = s;
    est.requests = spec.requests.size();

    // Serial issue with max_outstanding in flight: with blocking loads
    // (outstanding = 1) every request pays the full round trip; with a
    // window W the latency amortises ~W-fold.
    double per_request = cfg.issue_cycles + cfg.dram_latency;
    per_request /= static_cast<double>(cfg.max_outstanding);
    double pre_issue = 0;
    double service = 0;
    for (const auto& r : spec.requests) {
      pre_issue += r.pre_issue_cycles;
      service += std::ceil(static_cast<double>(r.bytes) / cfg.bank_bytes_per_cycle);
    }
    est.codelet_cycles = static_cast<double>(est.requests) * per_request + pre_issue +
                         service + static_cast<double>(spec.compute_cycles) +
                         cfg.pop_cycles + cfg.counter_update_cycles;
    est.coarse_stage_cycles =
        static_cast<double>((tasks_ + cfg.thread_units - 1) / cfg.thread_units) *
        est.codelet_cycles;
    stages_.push_back(est);

    // Exact bank occupancy census over every codelet of the stage.
    for (std::uint64_t i = 0; i < tasks_; ++i) {
      fp.build(s, i, spec);
      for (const auto& r : spec.requests)
        bank_occupancy_[r.bank] +=
            std::ceil(static_cast<double>(r.bytes) / cfg.bank_bytes_per_cycle);
    }
  }
}

double AnalyticModel::coarse_cycles() const {
  double total = 0;
  for (const auto& st : stages_) total += st.coarse_stage_cycles;
  total += static_cast<double>(cfg_.barrier_cycles) *
           static_cast<double>(stages_.size() - 1);
  return total;
}

double AnalyticModel::fine_ideal_cycles() const {
  double work = 0;
  double max_latency = 0;
  for (const auto& st : stages_) {
    work += static_cast<double>(tasks_) * st.codelet_cycles;
    max_latency = std::max(max_latency, st.codelet_cycles);
  }
  return work / static_cast<double>(cfg_.thread_units) + max_latency;
}

double AnalyticModel::bank_bound_cycles() const {
  double mx = 0;
  for (double b : bank_occupancy_) mx = std::max(mx, b);
  return mx;
}

double AnalyticModel::reorder_gain_ceiling() const {
  const double floor = std::max(fine_ideal_cycles(), bank_bound_cycles());
  return floor > 0 ? coarse_cycles() / floor : 1.0;
}

}  // namespace c64fft::simfft
