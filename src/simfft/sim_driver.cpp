#include "simfft/sim_driver.hpp"

#include <stdexcept>

namespace c64fft::simfft {

using c64::PopResult;
using codelet::PoolPolicy;

// ---------------------------------------------------------------------------
// FftSimProgramBase

FftSimProgramBase::FftSimProgramBase(const FootprintBuilder& fp,
                                     const c64::ChipConfig& cfg)
    : fp_(fp), cfg_(cfg) {
  const fft::FftPlan& plan = fp.plan();
  total_ = plan.total_tasks();
  counters_.resize(plan.stage_count());
  for (std::uint32_t s = 1; s < plan.stage_count(); ++s)
    counters_[s].assign(plan.groups_in_stage(s), 0);
}

void FftSimProgramBase::fill_spec(std::uint32_t stage, std::uint64_t task,
                                  c64::TaskSpec& out, std::uint32_t start_overhead,
                                  std::uint32_t finish_overhead) const {
  fp_.build(stage, task, out);
  out.task_id = encode(stage, task);
  out.start_overhead_cycles = start_overhead;
  out.finish_overhead_cycles = finish_overhead;
}

bool FftSimProgramBase::pop_ready(PoolPolicy policy, Ready& out) {
  if (ready_.empty()) return false;
  if (policy == PoolPolicy::kLifo) {
    out = ready_.back();
    ready_.pop_back();
  } else {
    out = ready_.front();
    ready_.pop_front();
  }
  return true;
}

void FftSimProgramBase::propagate(std::uint32_t stage, std::uint64_t task,
                                  std::uint32_t last_propagated) {
  const fft::FftPlan& plan = fp_.plan();
  if (stage >= last_propagated || stage + 1 >= plan.stage_count()) return;
  const std::uint64_t g = plan.child_group(stage, task);
  std::uint32_t& cnt = counters_[stage + 1][g];
  if (++cnt == plan.group_threshold(stage + 1)) {
    plan.group_members(stage + 1, g, members_buf_);
    for (std::uint64_t m : members_buf_) push_ready({stage + 1, m});
  } else if (cnt > plan.group_threshold(stage + 1)) {
    throw std::logic_error("simfft: dependency counter over-satisfied");
  }
}

void FftSimProgramBase::reset_counters() {
  for (auto& stage : counters_)
    for (auto& c : stage) c = 0;
}

// ---------------------------------------------------------------------------
// CoarseSimProgram

CoarseSimProgram::CoarseSimProgram(const FootprintBuilder& fp, const c64::ChipConfig& cfg)
    : FftSimProgramBase(fp, cfg), next_of_tu_(cfg.thread_units, 0) {
  for (std::uint32_t tu = 0; tu < cfg.thread_units; ++tu) next_of_tu_[tu] = tu;
}

PopResult CoarseSimProgram::next_task(unsigned tu, std::uint64_t now,
                                      c64::TaskSpec& out, std::uint64_t& wake_at) {
  const fft::FftPlan& plan = fp_.plan();
  if (finished()) return PopResult::kFinished;
  if (in_barrier_) {
    if (now < release_at_) {
      wake_at = release_at_;
      return PopResult::kWait;
    }
    in_barrier_ = false;
    ++stage_;
    for (std::uint32_t t = 0; t < cfg_.thread_units; ++t) next_of_tu_[t] = t;
    done_in_stage_ = 0;
  }
  if (next_of_tu_[tu] >= plan.tasks_per_stage()) return PopResult::kIdle;
  // Static cyclic distribution of the parallel-for: cheap dispatch.
  fill_spec(stage_, next_of_tu_[tu], out, cfg_.task_overhead_cycles / 8, 0);
  next_of_tu_[tu] += cfg_.thread_units;
  return PopResult::kTask;
}

void CoarseSimProgram::task_done(unsigned /*tu*/, std::uint64_t /*task_id*/,
                                 std::uint64_t now) {
  ++completed_;
  ++done_in_stage_;
  if (done_in_stage_ == fp_.plan().tasks_per_stage() && !finished()) {
    in_barrier_ = true;
    release_at_ = now + cfg_.barrier_cycles;
  }
}

// ---------------------------------------------------------------------------
// FineSimProgram

FineSimProgram::FineSimProgram(const FootprintBuilder& fp, const c64::ChipConfig& cfg,
                               const fft::FineOrdering& ordering)
    : FftSimProgramBase(fp, cfg), policy_(ordering.policy) {
  const auto order =
      fft::make_seed_order(ordering.order, fp.plan().tasks_per_stage(), ordering.seed);
  for (std::uint64_t id : order) push_ready({0, id});
}

PopResult FineSimProgram::next_task(unsigned /*tu*/, std::uint64_t /*now*/,
                                    c64::TaskSpec& out, std::uint64_t& /*wake_at*/) {
  if (finished()) return PopResult::kFinished;
  Ready r{};
  if (!pop_ready(policy_, r)) return PopResult::kIdle;
  fill_spec(r.stage, r.task, out, cfg_.pop_cycles, cfg_.counter_update_cycles);
  return PopResult::kTask;
}

void FineSimProgram::task_done(unsigned /*tu*/, std::uint64_t task_id,
                               std::uint64_t /*now*/) {
  ++completed_;
  const Ready r = decode(task_id);
  propagate(r.stage, r.task, fp_.plan().stage_count() - 1);
}

// ---------------------------------------------------------------------------
// GuidedSimProgram

GuidedSimProgram::GuidedSimProgram(const FootprintBuilder& fp, const c64::ChipConfig& cfg)
    : FftSimProgramBase(fp, cfg) {
  const fft::FftPlan& plan = fp.plan();
  degenerate_ = plan.stage_count() < 3;
  last_early_ = degenerate_ ? 0 : plan.stage_count() - 3;
  phase1_total_ =
      degenerate_ ? 0 : plan.tasks_per_stage() * (static_cast<std::uint64_t>(last_early_) + 1);
  if (degenerate_) {
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i) push_ready({0, i});
    phase2_seeded_ = true;
  } else {
    for (std::uint64_t i = 0; i < plan.tasks_per_stage(); ++i) push_ready({0, i});
  }
}

void GuidedSimProgram::seed_phase2() {
  const fft::FftPlan& plan = fp_.plan();
  const std::uint32_t penultimate = plan.stage_count() - 2;
  // Column batches with distinct data banks, member-interleaved — see
  // fft::guided_phase2_order.
  for (std::uint64_t p :
       fft::guided_phase2_order(plan, cfg_.dram_banks, cfg_.interleave_bytes))
    push_ready({penultimate, p});
  phase2_seeded_ = true;
}

PopResult GuidedSimProgram::next_task(unsigned /*tu*/, std::uint64_t now,
                                      c64::TaskSpec& out, std::uint64_t& wake_at) {
  if (finished()) return PopResult::kFinished;
  if (in_barrier_) {
    if (now < release_at_) {
      wake_at = release_at_;
      return PopResult::kWait;
    }
    in_barrier_ = false;
    if (!phase2_seeded_) seed_phase2();
  }
  Ready r{};
  if (!pop_ready(PoolPolicy::kLifo, r)) return PopResult::kIdle;
  fill_spec(r.stage, r.task, out, cfg_.pop_cycles, cfg_.counter_update_cycles);
  return PopResult::kTask;
}

void GuidedSimProgram::task_done(unsigned /*tu*/, std::uint64_t task_id,
                                 std::uint64_t now) {
  ++completed_;
  const Ready r = decode(task_id);
  if (degenerate_) {
    propagate(r.stage, r.task, fp_.plan().stage_count() - 1);
    return;
  }
  if (r.stage <= last_early_) {
    // Phase 1: codelets of the last early stage do not propagate (Alg. 3).
    propagate(r.stage, r.task, last_early_);
    if (++phase1_done_ == phase1_total_) {
      in_barrier_ = true;
      release_at_ = now + cfg_.barrier_cycles;
    }
  } else {
    propagate(r.stage, r.task, fp_.plan().stage_count() - 1);
  }
}

}  // namespace c64fft::simfft
