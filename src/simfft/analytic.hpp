#pragma once
// First-order analytical performance model of the simulated machine, used
// three ways: (a) sanity-check the discrete-event engine in tests, (b)
// explain *where* each version's cycles go (waves, latency, barriers,
// bank-occupancy bound), and (c) document the order-invariance bound of
// DESIGN.md §2.1 as executable math.
//
// The model deliberately ignores queueing: it charges every request the
// unloaded round trip. It therefore *underestimates* congested runs; the
// tests assert the simulator lands between this estimate and a generous
// multiple of it, and that the schedule-invariant bank bound is never
// violated by any simulated schedule.

#include <cstdint>
#include <vector>

#include "c64/config.hpp"
#include "simfft/footprint.hpp"

namespace c64fft::simfft {

struct StageEstimate {
  std::uint32_t stage = 0;
  /// Off-chip requests one codelet of this stage issues.
  std::uint64_t requests = 0;
  /// Unloaded latency of one codelet in cycles (serial issue, no queues).
  double codelet_cycles = 0;
  /// Static-scheduled stage time: ceil(tasks/TUs) waves of codelets.
  double coarse_stage_cycles = 0;
};

class AnalyticModel {
 public:
  AnalyticModel(const FootprintBuilder& fp, const c64::ChipConfig& cfg);

  const std::vector<StageEstimate>& stages() const noexcept { return stages_; }

  /// Unloaded per-codelet latency of stage s.
  double codelet_latency(std::uint32_t s) const { return stages_.at(s).codelet_cycles; }

  /// Coarse (Alg. 1) makespan estimate: per-stage waves + barriers.
  double coarse_cycles() const;

  /// Fine-grain ideal: total codelet work perfectly packed onto the TUs,
  /// plus one pipeline drain (no wave quantisation, no barriers).
  double fine_ideal_cycles() const;

  /// Schedule-invariant lower bound: the busiest bank's total service
  /// occupancy. No reordering can beat this (DESIGN.md §2.1).
  double bank_bound_cycles() const;

  /// Predicted ceiling on the fine-vs-coarse speedup in this model
  /// (coarse estimate over the max of the fine ideal and the bank bound).
  double reorder_gain_ceiling() const;

 private:
  const c64::ChipConfig cfg_;
  std::vector<StageEstimate> stages_;
  std::vector<double> bank_occupancy_;  // cycles per bank, whole run
  std::uint64_t tasks_ = 0;
};

}  // namespace c64fft::simfft
