#include "simfft/experiment.hpp"

#include <limits>
#include <memory>
#include <stdexcept>

#include "fft/plan.hpp"
#include "simfft/footprint.hpp"
#include "simfft/sim_driver.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::simfft {

std::string to_string(SimVariant v) {
  switch (v) {
    case SimVariant::kCoarse: return "coarse";
    case SimVariant::kCoarseHash: return "coarse hash";
    case SimVariant::kFineWorst: return "fine worst";
    case SimVariant::kFineBest: return "fine best";
    case SimVariant::kFineHash: return "fine hash";
    case SimVariant::kFineGuided: return "fine guided";
    case SimVariant::kFineCustom: return "fine custom";
  }
  return "?";
}

double fft_gflops(std::uint64_t n, double seconds) {
  if (seconds <= 0.0) return 0.0;
  return 5.0 * static_cast<double>(n) * static_cast<double>(util::ilog2(n)) / seconds / 1e9;
}

namespace {

struct SingleRun {
  c64::SimResult sim;
  std::vector<std::uint64_t> bank_totals;
};

SingleRun run_once(SimVariant v, const fft::FftPlan& plan, const c64::ChipConfig& cfg,
                   const fft::FineOrdering& ordering, std::uint64_t trace_window,
                   c64::BankTrace* trace) {
  const fft::TwiddleLayout layout =
      (v == SimVariant::kCoarseHash || v == SimVariant::kFineHash)
          ? fft::TwiddleLayout::kBitReversed
          : fft::TwiddleLayout::kLinear;
  FootprintBuilder fp(plan, cfg, layout);

  std::unique_ptr<FftSimProgramBase> program;
  switch (v) {
    case SimVariant::kCoarse:
    case SimVariant::kCoarseHash:
      program = std::make_unique<CoarseSimProgram>(fp, cfg);
      break;
    case SimVariant::kFineGuided:
      program = std::make_unique<GuidedSimProgram>(fp, cfg);
      break;
    default:
      program = std::make_unique<FineSimProgram>(fp, cfg, ordering);
      break;
  }

  std::unique_ptr<c64::BankTrace> local;
  c64::BankTrace* t = trace;
  if (!t) {
    local = std::make_unique<c64::BankTrace>(cfg.dram_banks, trace_window);
    t = local.get();
  }
  c64::SimEngine engine(cfg, *program, t);
  SingleRun out;
  out.sim = engine.run();
  out.bank_totals = t->totals();
  return out;
}

}  // namespace

SimRunResult run_fft_sim(SimVariant v, std::uint64_t n, const c64::ChipConfig& cfg,
                         const SimFftOptions& opts, c64::BankTrace* trace) {
  const fft::FftPlan plan(n, opts.radix_log2);

  SimRunResult result;
  result.name = to_string(v);

  const fft::FineOrdering best_default{codelet::PoolPolicy::kLifo,
                                       fft::SeedOrder::kNatural, 1};
  switch (v) {
    case SimVariant::kCoarse:
    case SimVariant::kCoarseHash:
    case SimVariant::kFineGuided: {
      auto run = run_once(v, plan, cfg, best_default, opts.trace_window, trace);
      result.sim = run.sim;
      result.bank_totals = std::move(run.bank_totals);
      break;
    }
    case SimVariant::kFineHash: {
      auto run = run_once(v, plan, cfg, best_default, opts.trace_window, trace);
      result.sim = run.sim;
      result.bank_totals = std::move(run.bank_totals);
      result.ordering = best_default;
      break;
    }
    case SimVariant::kFineCustom: {
      auto run = run_once(v, plan, cfg, opts.ordering, opts.trace_window, trace);
      result.sim = run.sim;
      result.bank_totals = std::move(run.bank_totals);
      result.ordering = opts.ordering;
      break;
    }
    case SimVariant::kFineWorst:
    case SimVariant::kFineBest: {
      // Sweep the orderings (without tracing), keep the envelope, then
      // re-run the chosen ordering with the caller's trace attached.
      const bool want_worst = v == SimVariant::kFineWorst;
      std::uint64_t best_cycles =
          want_worst ? 0 : std::numeric_limits<std::uint64_t>::max();
      fft::FineOrdering chosen = best_default;
      for (const auto& o : fft::ordering_sweep()) {
        auto run = run_once(SimVariant::kFineCustom, plan, cfg, o, opts.trace_window,
                            nullptr);
        const bool better = want_worst ? run.sim.cycles > best_cycles
                                       : run.sim.cycles < best_cycles;
        if (better) {
          best_cycles = run.sim.cycles;
          chosen = o;
        }
      }
      auto run =
          run_once(SimVariant::kFineCustom, plan, cfg, chosen, opts.trace_window, trace);
      result.sim = run.sim;
      result.bank_totals = std::move(run.bank_totals);
      result.ordering = chosen;
      break;
    }
  }

  result.gflops = fft_gflops(n, result.sim.seconds);
  return result;
}

std::vector<SimRunResult> run_all_variants(std::uint64_t n, const c64::ChipConfig& cfg,
                                           const SimFftOptions& opts) {
  std::vector<SimRunResult> out;
  for (SimVariant v :
       {SimVariant::kCoarse, SimVariant::kCoarseHash, SimVariant::kFineWorst,
        SimVariant::kFineBest, SimVariant::kFineHash, SimVariant::kFineGuided})
    out.push_back(run_fft_sim(v, n, cfg, opts));
  return out;
}

}  // namespace c64fft::simfft
