#pragma once
// Translates one FFT codelet into the off-chip memory traffic and compute
// time it costs on the modelled C64 — the bridge between the FFT plan
// algebra (src/fft) and the discrete-event machine (src/c64).
//
// Every data/twiddle element access is mapped to its DRAM bank through the
// 64 B round-robin AddressMap; consecutive same-bank accesses of one task
// are merged into requests of at most `coalesce_limit` bytes (byte counts
// are exact). A task whose scratchpad working set exceeds
// `scratchpad_bytes` reloads and re-stores its data once more (spill).
// With the bit-reversed ("hashed") twiddle layout every twiddle access is
// charged the hash cost as a pre-issue delay on the issuing TU.

#include <cstdint>

#include "c64/address_map.hpp"
#include "c64/config.hpp"
#include "c64/engine.hpp"
#include "fft/plan.hpp"
#include "fft/twiddle.hpp"

namespace c64fft::simfft {

class FootprintBuilder {
 public:
  /// `data_base` / `twiddle_base` are the byte addresses of the two
  /// arrays in DRAM. Both default to interleave-aligned bases (bank 0),
  /// matching the paper's setup where the twiddle hotspot is bank 0.
  /// `element_bytes` is the byte width of one complex element (16 for
  /// double-complex — the paper's setup and the default — or 8 for
  /// float-complex); it scales every address, the coalescing runs, and
  /// the spill threshold, so the f32 footprint is a genuinely different
  /// traffic shape, not the f64 one rescaled.
  FootprintBuilder(const fft::FftPlan& plan, const c64::ChipConfig& cfg,
                   fft::TwiddleLayout layout, std::uint64_t data_base = 0,
                   std::uint64_t twiddle_base = 0, unsigned element_bytes = 16);

  /// Fill `out` (task_id and overhead fields are left to the caller) with
  /// the loads, compute cycles and stores of task `task` of stage `stage`.
  void build(std::uint32_t stage, std::uint64_t task, c64::TaskSpec& out) const;

  /// Off-chip bytes the task moves (loads + stores, incl. spill).
  std::uint64_t bytes_per_task(std::uint32_t stage) const;

  /// True when one task's working set exceeds the scratchpad and spills.
  bool spills() const noexcept { return spill_; }

  const fft::FftPlan& plan() const noexcept { return plan_; }
  fft::TwiddleLayout layout() const noexcept { return layout_; }
  unsigned element_bytes() const noexcept { return elem_; }

 private:
  struct Run {  // coalescing state
    int bank = -1;
    std::uint32_t bytes = 0;
    std::uint32_t pre_issue = 0;
    std::uint64_t next_addr = 0;  // address one past the current run
  };
  void add_element(c64::TaskSpec& out, Run& run, std::uint64_t addr,
                   std::uint32_t pre_issue) const;
  static void flush(c64::TaskSpec& out, Run& run);

  void append_data_pass(std::uint32_t stage, std::uint64_t task,
                        c64::TaskSpec& out, Run& run) const;
  void append_twiddles(std::uint32_t stage, std::uint64_t task, c64::TaskSpec& out,
                       Run& run) const;

  const fft::FftPlan& plan_;
  c64::ChipConfig cfg_;  // copied: builders must not alias caller mutations
  c64::AddressMap map_;
  fft::TwiddleLayout layout_;
  std::uint64_t data_base_;
  std::uint64_t twiddle_base_;
  unsigned elem_;
  unsigned twiddle_bits_;
  bool spill_;
};

}  // namespace c64fft::simfft
