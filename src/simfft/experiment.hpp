#pragma once
// One-call experiment runner: simulate one of the paper's FFT versions
// (Table I) on the modelled C64 and report cycles / GFLOPS / bank
// statistics. The "fine worst"/"fine best" rows sweep the pool orderings
// and return the envelope, exactly like the paper's empirical min/max.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "c64/config.hpp"
#include "c64/engine.hpp"
#include "c64/trace.hpp"
#include "fft/ordering.hpp"
#include "fft/twiddle.hpp"

namespace c64fft::simfft {

/// The six result rows of the paper's Table I.
enum class SimVariant {
  kCoarse,      ///< Alg. 1
  kCoarseHash,  ///< Alg. 1 + bit-reversed twiddle layout
  kFineWorst,   ///< Alg. 2, worst ordering of the sweep
  kFineBest,    ///< Alg. 2, best ordering of the sweep
  kFineHash,    ///< Alg. 2 (LIFO/natural) + bit-reversed twiddles
  kFineGuided,  ///< Alg. 3
  kFineCustom,  ///< Alg. 2 with a caller-chosen ordering
};

struct SimFftOptions {
  unsigned radix_log2 = 6;
  /// Ordering for kFineCustom.
  fft::FineOrdering ordering{};
  /// Window width for the bank trace (the paper buckets per 3e6 cycles;
  /// a finer default makes short runs legible).
  std::uint64_t trace_window = 100'000;
};

struct SimRunResult {
  std::string name;
  c64::SimResult sim;
  double gflops = 0.0;
  /// Ordering that produced the result (fine variants only).
  std::optional<fft::FineOrdering> ordering;
  /// Whole-run per-bank access totals.
  std::vector<std::uint64_t> bank_totals;
};

std::string to_string(SimVariant v);

/// 5 N log2 N flops / seconds, in GFLOPS.
double fft_gflops(std::uint64_t n, double seconds);

/// Run one version on an N-point FFT. When `trace` is non-null the
/// (final, for swept variants) run records its per-bank access series.
SimRunResult run_fft_sim(SimVariant v, std::uint64_t n, const c64::ChipConfig& cfg,
                         const SimFftOptions& opts = {}, c64::BankTrace* trace = nullptr);

/// Run all six Table-I rows.
std::vector<SimRunResult> run_all_variants(std::uint64_t n, const c64::ChipConfig& cfg,
                                           const SimFftOptions& opts = {});

}  // namespace c64fft::simfft
