#include "simfft/fft2d_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "c64/address_map.hpp"
#include "util/bit_ops.hpp"

namespace c64fft::simfft {

namespace {

using c64::MemRequest;
using c64::TaskSpec;

// Independent-task program: every task prebuilt, handed out in order.
class PassProgram final : public c64::SimProgram {
 public:
  explicit PassProgram(std::vector<TaskSpec> tasks) : tasks_(std::move(tasks)) {}
  c64::PopResult next_task(unsigned, std::uint64_t, TaskSpec& out,
                           std::uint64_t&) override {
    if (next_ >= tasks_.size())
      return done_ == tasks_.size() ? c64::PopResult::kFinished : c64::PopResult::kIdle;
    out = tasks_[next_++];
    return c64::PopResult::kTask;
  }
  void task_done(unsigned, std::uint64_t, std::uint64_t) override { ++done_; }
  bool finished() const override { return done_ == tasks_.size(); }

 private:
  std::vector<TaskSpec> tasks_;
  std::size_t next_ = 0;
  std::size_t done_ = 0;
};

// Append element accesses [first, first+count) of a contiguous run,
// coalesced within interleave lines (same rule as FootprintBuilder).
void add_contiguous(const c64::ChipConfig& cfg, const c64::AddressMap& map,
                    std::vector<MemRequest>& out, std::uint64_t base_addr,
                    std::uint64_t count) {
  std::uint64_t addr = base_addr;
  std::uint64_t left = count * 16;
  while (left > 0) {
    const std::uint64_t in_line = std::min<std::uint64_t>(
        {left, map.bytes_left_in_line(addr), cfg.coalesce_limit});
    MemRequest req;
    req.bank = static_cast<std::uint16_t>(map.bank_of(addr));
    req.bytes = static_cast<std::uint32_t>(in_line);
    out.push_back(req);
    addr += in_line;
    left -= in_line;
  }
}

// One element access (16 B), not coalescable.
void add_element(const c64::AddressMap& map, std::vector<MemRequest>& out,
                 std::uint64_t addr) {
  MemRequest req;
  req.bank = static_cast<std::uint16_t>(map.bank_of(addr));
  req.bytes = 16;
  out.push_back(req);
}

double row_fft_flops(std::uint64_t cols) {
  return 5.0 * static_cast<double>(cols) * static_cast<double>(util::ilog2(cols));
}

c64::SimResult run_pass(const c64::ChipConfig& cfg, std::vector<TaskSpec> tasks) {
  PassProgram prog(std::move(tasks));
  return c64::SimEngine(cfg, prog).run();
}

}  // namespace

Fft2dSimResult run_fft2d_sim(const c64::ChipConfig& cfg, const Fft2dSimOptions& opts) {
  const std::uint64_t rows = opts.rows, cols = opts.cols;
  if (!util::is_pow2(rows) || !util::is_pow2(cols) || rows < 4 || cols < 4)
    throw std::invalid_argument("run_fft2d_sim: dims must be powers of two >= 4");
  if (opts.tile == 0 || rows % opts.tile || cols % opts.tile)
    throw std::invalid_argument("run_fft2d_sim: tile must divide both dims");
  const c64::AddressMap map(cfg);
  const std::uint64_t src = 0;                  // row-major matrix
  const std::uint64_t dst = rows * cols * 16;   // transposed copy

  Fft2dSimResult result;

  // ---- Pass 1: one FFT task per row (contiguous load/compute/store). ----
  {
    std::vector<TaskSpec> tasks(rows);
    for (std::uint64_t r = 0; r < rows; ++r) {
      TaskSpec& t = tasks[r];
      t.task_id = r;
      add_contiguous(cfg, map, t.requests, src + r * cols * 16, cols);
      t.first_store = static_cast<std::uint32_t>(t.requests.size());
      add_contiguous(cfg, map, t.requests, src + r * cols * 16, cols);
      t.compute_cycles = static_cast<std::uint64_t>(
                             row_fft_flops(cols) / cfg.flops_per_cycle_per_tu) +
                         cfg.task_overhead_cycles;
      t.start_overhead_cycles = cfg.pop_cycles;
    }
    result.row_pass = run_pass(cfg, std::move(tasks));
  }

  // ---- Pass 2: transpose src -> dst. ----
  {
    std::vector<TaskSpec> tasks;
    if (!opts.tiled_transpose) {
      // Naive: task j gathers column j (stride cols*16 -> one bank) and
      // stores it as row j of dst.
      tasks.resize(cols);
      for (std::uint64_t j = 0; j < cols; ++j) {
        TaskSpec& t = tasks[j];
        t.task_id = j;
        for (std::uint64_t r = 0; r < rows; ++r)
          add_element(map, t.requests, src + (r * cols + j) * 16);
        t.first_store = static_cast<std::uint32_t>(t.requests.size());
        add_contiguous(cfg, map, t.requests, dst + j * rows * 16, rows);
        t.compute_cycles = rows + cfg.task_overhead_cycles;  // move loop
        t.start_overhead_cycles = cfg.pop_cycles;
      }
    } else {
      // Tiled: task (i,j) moves a tile x tile block; reads and writes are
      // short contiguous runs on rotating banks.
      const unsigned T = opts.tile;
      tasks.reserve(rows / T * (cols / T));
      for (std::uint64_t i = 0; i < rows; i += T) {
        for (std::uint64_t j = 0; j < cols; j += T) {
          TaskSpec t;
          t.task_id = i * cols + j;
          for (std::uint64_t r = 0; r < T; ++r)
            add_contiguous(cfg, map, t.requests, src + ((i + r) * cols + j) * 16, T);
          t.first_store = static_cast<std::uint32_t>(t.requests.size());
          for (std::uint64_t c = 0; c < T; ++c)
            add_contiguous(cfg, map, t.requests, dst + ((j + c) * rows + i) * 16, T);
          t.compute_cycles = static_cast<std::uint64_t>(T) * T + cfg.task_overhead_cycles;
          t.start_overhead_cycles = cfg.pop_cycles;
          tasks.push_back(std::move(t));
        }
      }
    }
    result.transpose = run_pass(cfg, std::move(tasks));
  }

  // ---- Pass 3: one FFT task per transposed row (original column). ----
  {
    std::vector<TaskSpec> tasks(cols);
    for (std::uint64_t j = 0; j < cols; ++j) {
      TaskSpec& t = tasks[j];
      t.task_id = j;
      add_contiguous(cfg, map, t.requests, dst + j * rows * 16, rows);
      t.first_store = static_cast<std::uint32_t>(t.requests.size());
      add_contiguous(cfg, map, t.requests, dst + j * rows * 16, rows);
      t.compute_cycles = static_cast<std::uint64_t>(
                             row_fft_flops(rows) / cfg.flops_per_cycle_per_tu) +
                         cfg.task_overhead_cycles;
      t.start_overhead_cycles = cfg.pop_cycles;
    }
    result.col_pass = run_pass(cfg, std::move(tasks));
  }

  result.total_cycles = result.row_pass.cycles + result.transpose.cycles +
                        result.col_pass.cycles + 2ULL * cfg.barrier_cycles;
  const double n = static_cast<double>(rows * cols);
  const double flops = 5.0 * n * static_cast<double>(util::ilog2(rows * cols));
  result.gflops =
      flops / (static_cast<double>(result.total_cycles) * cfg.seconds_per_cycle()) / 1e9;

  double sum = 0, mx = 0;
  for (auto b : result.transpose.bank_busy_cycles) {
    sum += static_cast<double>(b);
    mx = std::max(mx, static_cast<double>(b));
  }
  result.transpose_bank_imbalance =
      sum > 0 ? mx * static_cast<double>(cfg.dram_banks) / sum : 1.0;
  return result;
}

}  // namespace c64fft::simfft
