// Spectral analysis: find the tones hidden in a noisy synthetic signal.
// Exercises the signal builder (util/signal.hpp), window functions
// (fft/window.hpp) and the power_spectrum convenience API — the classic
// signal-processing workload the paper's introduction motivates.

#include <cmath>
#include <iostream>
#include <vector>

#include "fft/api.hpp"
#include "fft/window.hpp"
#include "util/signal.hpp"

int main() {
  // Synthesize 8192 samples at a nominal 8192 Hz: tones at 440 Hz (A4,
  // strong), 1320.5 Hz (off-bin, weaker) and 3000 Hz (faint), plus a weak
  // up-chirp and noise.
  const std::size_t n = 8192;
  const double fs = 8192.0;
  c64fft::util::SignalBuilder sig(n, fs);
  sig.tone({440.0, 1.0, 0.0})
      .tone({1320.5, 0.4, 0.7})
      .tone({3000.0, 0.1, 0.0})
      .noise(0.05, 2026);

  c64fft::fft::HostFftOptions opts;
  opts.workers = 4;

  // A Hann window keeps the off-bin 1320.5 Hz tone from leaking across
  // the spectrum; divide by the coherent gain to recover amplitudes.
  auto windowed = sig.real();
  c64fft::fft::apply_window(c64fft::fft::WindowKind::kHann, windowed);
  const auto spectrum = c64fft::fft::power_spectrum(windowed, opts);
  const double gain = c64fft::fft::coherent_gain(c64fft::fft::WindowKind::kHann, n);

  double strongest = 0.0;
  for (double p : spectrum) strongest = std::max(strongest, p);
  std::cout << "detected tones (bin resolution " << fs / static_cast<double>(n)
            << " Hz, Hann window, coherent gain " << gain << "):\n";
  for (std::size_t k = 1; k + 1 < spectrum.size(); ++k) {
    if (spectrum[k] > spectrum[k - 1] && spectrum[k] >= spectrum[k + 1] &&
        spectrum[k] > 0.004 * strongest) {
      const double amplitude =
          2.0 * std::sqrt(spectrum[k] / static_cast<double>(n)) / gain;
      std::cout << "  " << static_cast<double>(k) * fs / static_cast<double>(n)
                << " Hz  (amplitude ~" << amplitude << ")\n";
    }
  }
  return 0;
}
