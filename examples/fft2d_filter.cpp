// 2-D FFT low-pass filtering: build a synthetic "image" (smooth gradient +
// high-frequency checkerboard noise), transform with the row-column 2-D
// FFT, zero everything outside a low-frequency disc, transform back, and
// report how much of the noise was removed.

#include <cmath>
#include <iostream>
#include <vector>

#include "fft/fft2d.hpp"
#include "fft/reference.hpp"

using c64fft::fft::cplx;

int main() {
  const std::uint64_t rows = 64, cols = 64;
  std::vector<cplx> clean(rows * cols), noisy(rows * cols);
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      const double smooth =
          std::sin(2.0 * 3.14159265 * r / rows) + 0.5 * std::cos(2.0 * 3.14159265 * c / cols);
      const double checker = ((r + c) % 2 == 0) ? 0.8 : -0.8;  // Nyquist noise
      clean[r * cols + c] = cplx(smooth, 0.0);
      noisy[r * cols + c] = cplx(smooth + checker, 0.0);
    }
  }

  c64fft::fft::HostFftOptions opts;
  opts.workers = 4;
  auto freq = noisy;
  c64fft::fft::forward_2d(freq, rows, cols, opts);

  // Keep only frequencies within radius 8 of DC (accounting for wrap).
  const double cutoff = 8.0;
  for (std::uint64_t r = 0; r < rows; ++r) {
    for (std::uint64_t c = 0; c < cols; ++c) {
      const double fr = r <= rows / 2 ? static_cast<double>(r) : static_cast<double>(rows - r);
      const double fc = c <= cols / 2 ? static_cast<double>(c) : static_cast<double>(cols - c);
      if (std::sqrt(fr * fr + fc * fc) > cutoff) freq[r * cols + c] = cplx(0, 0);
    }
  }
  c64fft::fft::inverse_2d(freq, rows, cols, opts);

  const double before = c64fft::fft::rel_l2_error(noisy, clean);
  const double after = c64fft::fft::rel_l2_error(freq, clean);
  std::cout << "2-D low-pass filter on a " << rows << "x" << cols << " image\n"
            << "  relative error vs clean image before filtering: " << before << '\n'
            << "  relative error vs clean image after filtering:  " << after << '\n'
            << (after < 0.2 * before ? "  noise removed OK\n" : "  filter ineffective\n");
  return after < 0.2 * before ? 0 : 1;
}
