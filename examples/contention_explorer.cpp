// Contention explorer: run any FFT version on the simulated Cyclops-64
// node and inspect what the paper is about — how the DRAM banks load up
// over time, how the versions compare, and what each model knob does.
//
//   contention_explorer --variant=coarse --logn=16
//   contention_explorer --variant=guided --logn=16 --tus=64
//   contention_explorer --all --logn=15

#include <cstdint>
#include <iostream>
#include <string>

#include "c64/trace.hpp"
#include "simfft/experiment.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace c64fft;

namespace {

simfft::SimVariant parse_variant(const std::string& name) {
  if (name == "coarse") return simfft::SimVariant::kCoarse;
  if (name == "coarse-hash") return simfft::SimVariant::kCoarseHash;
  if (name == "fine-worst") return simfft::SimVariant::kFineWorst;
  if (name == "fine-best") return simfft::SimVariant::kFineBest;
  if (name == "fine-hash") return simfft::SimVariant::kFineHash;
  if (name == "guided") return simfft::SimVariant::kFineGuided;
  throw std::invalid_argument("unknown variant '" + name + "'");
}

void heat_row(std::uint64_t value, std::uint64_t max) {
  const int width = max ? static_cast<int>(40 * value / max) : 0;
  std::cout << std::string(width, '#') << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "Explore DRAM bank contention of the FFT versions on the simulated "
      "C64 node");
  cli.add_string("variant", "coarse",
                 "coarse | coarse-hash | fine-worst | fine-best | fine-hash | guided");
  cli.add_int("logn", 15, "log2 of the input size");
  cli.add_int("tus", 156, "thread units");
  cli.add_flag("all", "summarise all six versions instead of one");
  if (!cli.parse(argc, argv)) return 0;

  c64::ChipConfig cfg;
  cfg.thread_units = static_cast<unsigned>(cli.get_int("tus"));
  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");

  if (cli.flag("all")) {
    util::TextTable table({"version", "cycles", "gflops", "bank0 share", "imbalance"});
    for (const auto& row : simfft::run_all_variants(n, cfg)) {
      std::uint64_t total = 0;
      for (auto t : row.bank_totals) total += t;
      double mx = 0;
      for (auto t : row.bank_totals) mx = std::max(mx, static_cast<double>(t));
      table.add_row({row.name, util::TextTable::num(row.sim.cycles),
                     util::TextTable::num(row.gflops, 3),
                     util::TextTable::num(100.0 * row.bank_totals[0] / double(total), 1) + "%",
                     util::TextTable::num(mx * 4.0 / double(total), 2)});
    }
    table.print(std::cout);
    return 0;
  }

  const auto variant = parse_variant(cli.get_string("variant"));
  simfft::SimFftOptions opts;
  const auto sizing = simfft::run_fft_sim(variant, n, cfg, opts);
  c64::BankTrace trace(cfg.dram_banks, std::max<std::uint64_t>(1, sizing.sim.cycles / 24));
  const auto run = simfft::run_fft_sim(variant, n, cfg, opts, &trace);

  std::cout << run.name << ": " << run.sim.cycles << " cycles, "
            << util::TextTable::num(run.gflops, 3) << " GFLOPS\n"
            << "per-bank access heat over time (rows = time windows):\n";
  std::uint64_t max = 0;
  for (std::size_t w = 0; w < trace.windows(); ++w)
    for (unsigned b = 0; b < 4; ++b) max = std::max(max, trace.at(w, b));
  for (std::size_t w = 0; w < trace.windows(); ++w) {
    for (unsigned b = 0; b < 4; ++b) {
      std::cout << "  t" << w << " bank" << b << ' ';
      heat_row(trace.at(w, b), max);
    }
    std::cout << '\n';
  }
  return 0;
}
