// FFT-based polynomial multiplication: multiply two degree-2047
// polynomials in O(N log N) via circular_convolve(), check against the
// O(N^2) schoolbook product.

#include <cstdint>
#include <iostream>
#include <vector>

#include "fft/api.hpp"
#include "util/prng.hpp"

using c64fft::fft::cplx;

int main() {
  const std::size_t degree = 2048;
  c64fft::util::Xoshiro256 rng(7);

  // Random integer coefficients in [-4, 4].
  std::vector<double> a(degree), b(degree);
  for (auto& x : a) x = static_cast<double>(rng.next_below(9)) - 4.0;
  for (auto& x : b) x = static_cast<double>(rng.next_below(9)) - 4.0;

  // Zero-pad to 2*degree so the circular convolution equals the linear one.
  const std::size_t n = 2 * degree;
  std::vector<cplx> fa(n, cplx{0, 0}), fb(n, cplx{0, 0});
  for (std::size_t i = 0; i < degree; ++i) {
    fa[i] = cplx(a[i], 0);
    fb[i] = cplx(b[i], 0);
  }

  c64fft::fft::HostFftOptions opts;
  opts.workers = 4;
  const auto product = c64fft::fft::circular_convolve(fa, fb, opts);

  // Schoolbook check.
  std::vector<double> want(2 * degree - 1, 0.0);
  for (std::size_t i = 0; i < degree; ++i)
    for (std::size_t j = 0; j < degree; ++j) want[i + j] += a[i] * b[j];

  double worst = 0.0;
  for (std::size_t k = 0; k < want.size(); ++k)
    worst = std::max(worst, std::abs(product[k].real() - want[k]));

  std::cout << "polynomial product of two degree-" << degree - 1 << " polynomials\n"
            << "  coefficient c[5]   = " << product[5].real() << " (exact "
            << want[5] << ")\n"
            << "  worst coefficient error vs schoolbook: " << worst << '\n'
            << (worst < 1e-6 ? "  OK\n" : "  MISMATCH\n");
  return worst < 1e-6 ? 0 : 1;
}
