// Quickstart: transform a small signal with the fine-grain codelet FFT,
// verify it against the naive DFT, and round-trip back. This is the
// 60-second tour of the public API (fft/api.hpp).

#include <complex>
#include <iostream>
#include <vector>

#include "fft/api.hpp"
#include "fft/reference.hpp"

using c64fft::fft::cplx;

int main() {
  // 1. Make a signal: a 3-cycle cosine over 1024 samples.
  const std::size_t n = 1024;
  std::vector<cplx> signal(n);
  for (std::size_t i = 0; i < n; ++i)
    signal[i] = cplx(std::cos(2.0 * 3.14159265358979 * 3.0 * i / n), 0.0);

  // 2. Forward FFT in place. The default engine is the fine-grain
  //    (barrier-free, dependency-counted) codelet scheduler of Alg. 2.
  c64fft::fft::HostFftOptions opts;
  opts.workers = 4;
  auto spectrum = signal;
  c64fft::fft::forward(spectrum, opts);

  // 3. The energy concentrates in bins 3 and n-3 (real input).
  std::cout << "quickstart: |X[2]| = " << std::abs(spectrum[2])
            << ", |X[3]| = " << std::abs(spectrum[3])
            << ", |X[4]| = " << std::abs(spectrum[4]) << '\n';

  // 4. Cross-check against the O(N^2) DFT and round-trip.
  const auto truth = c64fft::fft::dft_reference(signal);
  std::cout << "quickstart: max |fft - dft| = "
            << c64fft::fft::max_abs_error(spectrum, truth) << '\n';

  auto back = spectrum;
  c64fft::fft::inverse(back, opts);
  std::cout << "quickstart: round-trip max error = "
            << c64fft::fft::max_abs_error(back, signal) << '\n';

  // 5. The same call can run the coarse (Alg. 1) or guided (Alg. 3)
  //    scheduler — results are identical, only scheduling differs.
  auto guided = signal;
  c64fft::fft::forward(guided, opts, c64fft::fft::Variant::kGuided);
  std::cout << "quickstart: guided vs fine max diff = "
            << c64fft::fft::max_abs_error(guided, spectrum) << '\n';
  return 0;
}
