# Runs TOOL with ARGS (semicolon-separated) and fails unless the exit
# code equals EXPECTED — the harness behind the fft_lint exit-code
# contract tests, which pin each failed-check class to its documented
# status (ctest itself can only assert zero/nonzero).
if(NOT DEFINED TOOL OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "run_expect_exit: TOOL and EXPECTED are required")
endif()
separate_arguments(arg_list UNIX_COMMAND "${ARGS}")
execute_process(
  COMMAND ${TOOL} ${arg_list}
  RESULT_VARIABLE code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT code EQUAL EXPECTED)
  message(FATAL_ERROR
    "expected exit ${EXPECTED}, got ${code}\nstdout:\n${out}\nstderr:\n${err}")
endif()
