# Runner for the opt-in serving-throughput gate (see C64FFT_BENCH_CHECK):
# run fft_loadgen's compare mode (a coalesced pass and a one-request-
# per-phase baseline pass over the same mixed traffic), then gate the
# emitted LG_* rows with bench_check:
#
#   cmake -DLOADGEN=<bin> -DBENCH_CHECK=<bin> -DBASELINE=<json> \
#         -DOUT=<json> [-DTOLERANCE=0.50] [-DRATIO_MIN=1.5] \
#         -P run_loadgen_check.cmake
#
# Three properties are asserted:
#   1. zero steady-state dispatch-path allocations and a realized
#      coalescing factor (fft_loadgen --assert-* flags, exit status);
#   2. per-row throughput vs the committed BENCH_baseline.json LG_ rows
#      (tolerance is wide — serving throughput swings more than the
#      microbenches because the passes time wall-clock mixed traffic);
#   3. the coalescing payoff itself: coalesced items_per_second over the
#      uncoalesced baseline's must be >= RATIO_MIN. Both rows come from
#      the same run on the same machine, so the ratio — the property the
#      serving front-end exists to deliver — is immune to host drift.
#
# The traffic shape is pinned (8 clients x 4 tenants x 3 lanes, mixed
# precision, N in {64, 96, 101, 128}, 8 outstanding each, workers=2): the
# payoff being gated is phase-overhead amortization, so the executor must
# actually run scheduler phases (workers >= 2 — a 1-worker team takes
# the serial fast path, where there are no phases to amortize and
# per-buffer cache locality dominates instead). The size mix deliberately
# spans all three plan routes — pow2 classic, 7-smooth composite (96,
# mixed-radix) and prime (101, Bluestein) — so the gate covers exact-N
# serving, not just pow2.
#
# Regenerating the committed LG_ baseline rows: run this compare mode
# several times on a quiet machine and keep, per row, the run with the
# SMALLEST items_per_second (the conservative envelope, mirroring the
# per-row max real_time rule in run_bench_check.cmake).

foreach(var LOADGEN BENCH_CHECK BASELINE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_loadgen_check: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.50)
endif()
if(NOT DEFINED RATIO_MIN)
  set(RATIO_MIN 1.5)
endif()

execute_process(
  COMMAND ${LOADGEN} --mode=compare
          --clients=8 --tenants=4 --outstanding=8
          --sizes=64,96,101,128 --precision=mixed --workers=2
          --warmup-ms=200 --duration-ms=500
          --json=${OUT}
          --assert-min-coalesce=2
          --assert-zero-alloc
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_loadgen_check: fft_loadgen failed (${rc})")
endif()

# --filter=^LG_ scopes the diff to the serving rows: the committed
# baseline also carries the micro_kernels BM_ rows, which only
# run_bench_check.cmake regenerates.
execute_process(
  COMMAND ${BENCH_CHECK} --baseline=${BASELINE} --current=${OUT}
          --tolerance=${TOLERANCE} --metric=items_per_second --filter=^LG_
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_loadgen_check: bench_check reported regressions (${rc})")
endif()

execute_process(
  COMMAND ${BENCH_CHECK} --current=${OUT} --metric=items_per_second
          --ratio-num=LG_ServeCoalesced --ratio-den=LG_ServeUncoalesced
          --ratio-min=${RATIO_MIN}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_loadgen_check: coalescing speedup gate failed (${rc})")
endif()
