# Runner for the opt-in perf-regression ctest (see C64FFT_BENCH_CHECK):
# produce a fresh google-benchmark JSON report from micro_kernels, then
# gate it against the committed baseline with bench_check.
#
#   cmake -DMICRO_KERNELS=<bin> -DBENCH_CHECK=<bin> -DBASELINE=<json> \
#         -DOUT=<json> [-DTOLERANCE=0.30] -P run_bench_check.cmake
#
# Regenerating the committed baseline: run micro_kernels (same
# --benchmark_min_time=0.05) several times on a quiet machine and keep,
# per benchmark, the run with the LARGEST real_time. A single lucky
# fast-window run as baseline turns every later steady-state run into a
# false regression on hosts whose clock drifts under sustained load; the
# per-row max is the conservative envelope the tolerance is meant to
# guard from.

foreach(var MICRO_KERNELS BENCH_CHECK BASELINE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_bench_check: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.30)
endif()

execute_process(
  COMMAND ${MICRO_KERNELS}
          --benchmark_out=${OUT}
          --benchmark_out_format=json
          --benchmark_min_time=0.05
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_bench_check: micro_kernels exited with ${rc}")
endif()

# Compare wall time, not the default cpu_time: the executor rows run
# UseRealTime with the work on the team's threads, so their main-thread
# cpu_time is scheduler noise; real_time is the meaningful metric for
# them and equivalent for the single-threaded kernel rows.
# --exclude=^LG_ scopes the diff to this binary's rows: the committed
# baseline also carries the fft_loadgen serving rows, which only the
# loadgen gate (run_loadgen_check.cmake) regenerates.
execute_process(
  COMMAND ${BENCH_CHECK} --baseline=${BASELINE} --current=${OUT}
          --tolerance=${TOLERANCE} --metric=real_time --exclude=^LG_
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_bench_check: bench_check reported regressions (${rc})")
endif()

# RATIO_FILTER/RATIO_NUM/RATIO_DEN/RATIO_MIN (optional, given together)
# add the cross-row speedup gate: a second, filtered run re-measures just
# the paired rows with randomly interleaved repetitions, and
# min(current[RATIO_NUM]) / min(current[RATIO_DEN]) over each row's
# repetitions must be >= RATIO_MIN. Both rows come from the same run on
# the same machine (drift-immune), and gating on each side's fastest
# repetition measures the uncontended runtimes — the property the gate
# asserts is a speedup of the code, not of the neighbor load, and
# interference only ever adds time. 31 repetitions give both rows enough
# chances to land in quiet windows even on a busy host (medians were
# tried first and still swung +/-10% with the noise).
#
# RATIO2_*/RATIO3_* (same four variables each) add independent further
# gates with their own filtered runs — one bench_check ctest can then pin
# several unrelated speedup pairs (the SIMD payoff, the hierarchical-vs-
# four-step scheduling payoff, the exact-N mixed-radix-vs-padded-pow2
# payoff) without paying the full baseline sweep repeatedly.
foreach(gate "" "2" "3")
  if(DEFINED RATIO${gate}_MIN)
    execute_process(
      COMMAND ${MICRO_KERNELS}
              --benchmark_out=${OUT}.ratio${gate}.json
              --benchmark_out_format=json
              "--benchmark_filter=${RATIO${gate}_FILTER}"
              --benchmark_min_time=0.05
              --benchmark_repetitions=31
              --benchmark_enable_random_interleaving=true
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "run_bench_check: ratio${gate} rerun exited with ${rc}")
    endif()
    execute_process(
      COMMAND ${BENCH_CHECK} --current=${OUT}.ratio${gate}.json --metric=real_time
              --ratio-num=${RATIO${gate}_NUM} --ratio-den=${RATIO${gate}_DEN}
              --ratio-min=${RATIO${gate}_MIN} --ratio-agg=min
      RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR "run_bench_check: ratio${gate} gate failed (${rc})")
    endif()
  endif()
endforeach()
