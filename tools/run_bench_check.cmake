# Runner for the opt-in perf-regression ctest (see C64FFT_BENCH_CHECK):
# produce a fresh google-benchmark JSON report from micro_kernels, then
# gate it against the committed baseline with bench_check.
#
#   cmake -DMICRO_KERNELS=<bin> -DBENCH_CHECK=<bin> -DBASELINE=<json> \
#         -DOUT=<json> [-DTOLERANCE=0.30] -P run_bench_check.cmake

foreach(var MICRO_KERNELS BENCH_CHECK BASELINE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_bench_check: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.30)
endif()

execute_process(
  COMMAND ${MICRO_KERNELS}
          --benchmark_out=${OUT}
          --benchmark_out_format=json
          --benchmark_min_time=0.05
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_bench_check: micro_kernels exited with ${rc}")
endif()

execute_process(
  COMMAND ${BENCH_CHECK} --baseline=${BASELINE} --current=${OUT}
          --tolerance=${TOLERANCE}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_bench_check: bench_check reported regressions (${rc})")
endif()
