# Runner for the opt-in perf-regression ctest (see C64FFT_BENCH_CHECK):
# produce a fresh google-benchmark JSON report from micro_kernels, then
# gate it against the committed baseline with bench_check.
#
#   cmake -DMICRO_KERNELS=<bin> -DBENCH_CHECK=<bin> -DBASELINE=<json> \
#         -DOUT=<json> [-DTOLERANCE=0.30] -P run_bench_check.cmake
#
# Regenerating the committed baseline: run micro_kernels (same
# --benchmark_min_time=0.05) several times on a quiet machine and keep,
# per benchmark, the run with the LARGEST real_time. A single lucky
# fast-window run as baseline turns every later steady-state run into a
# false regression on hosts whose clock drifts under sustained load; the
# per-row max is the conservative envelope the tolerance is meant to
# guard from.

foreach(var MICRO_KERNELS BENCH_CHECK BASELINE OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_bench_check: -D${var}=... is required")
  endif()
endforeach()
if(NOT DEFINED TOLERANCE)
  set(TOLERANCE 0.30)
endif()

execute_process(
  COMMAND ${MICRO_KERNELS}
          --benchmark_out=${OUT}
          --benchmark_out_format=json
          --benchmark_min_time=0.05
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_bench_check: micro_kernels exited with ${rc}")
endif()

# Compare wall time, not the default cpu_time: the executor rows run
# UseRealTime with the work on the team's threads, so their main-thread
# cpu_time is scheduler noise; real_time is the meaningful metric for
# them and equivalent for the single-threaded kernel rows.
execute_process(
  COMMAND ${BENCH_CHECK} --baseline=${BASELINE} --current=${OUT}
          --tolerance=${TOLERANCE} --metric=real_time
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run_bench_check: bench_check reported regressions (${rc})")
endif()
