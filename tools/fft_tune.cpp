// fft_tune — offline schedule autotuner for the executor's kernel layer.
//
// For every requested (transform size, precision) at the process-active
// kernel ISA, benches the cartesian candidate grid of the two scheduling
// knobs — radix_log2 (the plan's stage decomposition) and fuse_log2 (how
// many leading butterfly levels each chain collapses into one fused
// pass) — through the real FftExecutor path, and keeps the fastest. Every
// candidate computes bit-identical results; only throughput differs, so
// the search is purely a timing exercise.
//
// Each candidate is installed as a one-entry ScheduleSet on the executor
// (exactly the mechanism production uses to consume a tuned file), so the
// tuner measures — and therefore validates — the full plan-cache lookup
// path, not a side channel. Winners serialize with --emit to the JSON
// format FftExecutor::load_schedules / C64FFT_SCHEDULE consume.
//
// With --hierarchical the searched grid switches to the large-N
// hierarchical path's knobs — hier_leaf_log2 (the recursive split's leaf
// cap, which fixes the level count and every per-level (n1, n2)) and
// hier_block_rows (rows per pipelined tile-block) — through an executor
// whose threshold routes the tuned sizes onto PlanKind::kHierarchical.
//
//   fft_tune                                   # tune defaults, print table
//   fft_tune --sizes=4096,16384 --precision=f32 --emit=schedule.json
//   fft_tune --isa=avx2 --verbose              # every candidate's timing
//   fft_tune --hierarchical --sizes=1048576 --emit=hier.json
//                                              # large-N hierarchical grid
//
// Exit codes: 0 success, 2 usage error.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "fft/executor.hpp"
#include "fft/kernels/dispatch.hpp"
#include "fft/schedule.hpp"
#include "util/bit_ops.hpp"
#include "util/cli.hpp"
#include "util/cpu_features.hpp"
#include "util/prng.hpp"

using namespace c64fft;

namespace {

std::vector<std::uint64_t> parse_u64_list(const std::string& text,
                                          const char* what) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    if (item.empty())
      throw std::invalid_argument(std::string(what) + ": empty list item");
    std::size_t used = 0;
    const unsigned long long v = std::stoull(item, &used, 10);
    if (used != item.size())
      throw std::invalid_argument(std::string(what) + ": bad number \"" + item +
                                  "\"");
    out.push_back(v);
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument(std::string(what) + ": empty");
  return out;
}

/// Median wall time of one executor forward() at size n, in nanoseconds.
/// Every rep transforms a fresh copy of one deterministic input (the copy
/// cost is identical across candidates, so rankings are unaffected).
template <typename T>
double median_forward_ns(fft::FftExecutor& exec, std::uint64_t n,
                         unsigned warmup, unsigned reps, std::uint64_t seed) {
  using clock = std::chrono::steady_clock;
  std::vector<fft::cplx_t<T>> pristine(n), work(n);
  util::Xoshiro256 rng(seed ^ n);
  for (fft::cplx_t<T>& v : pristine)
    v = fft::cplx_t<T>(static_cast<T>(2.0 * rng.next_double() - 1.0),
                       static_cast<T>(2.0 * rng.next_double() - 1.0));

  std::vector<double> samples;
  samples.reserve(reps);
  for (unsigned r = 0; r < warmup + reps; ++r) {
    std::copy(pristine.begin(), pristine.end(), work.begin());
    const clock::time_point t0 = clock::now();
    exec.forward(std::span<fft::cplx_t<T>>(work));
    const clock::time_point t1 = clock::now();
    if (r >= warmup)
      samples.push_back(
          std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                   samples.end());
  return samples[samples.size() / 2];
}

template <typename T>
fft::TunedSchedule tune_one(fft::FftExecutor& exec, std::uint64_t n,
                            util::IsaLevel isa,
                            const std::vector<std::uint64_t>& radix_candidates,
                            const std::vector<std::uint64_t>& fuse_candidates,
                            unsigned warmup, unsigned reps, std::uint64_t seed,
                            bool verbose) {
  const fft::Precision precision = fft::precision_of<T>;
  fft::TunedSchedule best;
  double best_ns = 0.0;
  bool have_best = false;
  for (const std::uint64_t radix_log2 : radix_candidates) {
    if (radix_log2 < 1 || radix_log2 > 8 || radix_log2 > util::ilog2(n))
      continue;  // not a legal plan shape for this n
    for (const std::uint64_t fuse_log2 : fuse_candidates) {
      fft::TunedSchedule candidate{n, precision, isa,
                                   static_cast<std::uint32_t>(radix_log2),
                                   static_cast<std::uint32_t>(fuse_log2)};
      fft::ScheduleSet one;
      one.insert(candidate);
      exec.set_schedules(std::move(one));
      const double ns = median_forward_ns<T>(exec, n, warmup, reps, seed);
      if (verbose)
        std::cout << "  n=" << n << ' ' << to_string(precision)
                  << " isa=" << util::to_string(isa)
                  << " radix_log2=" << radix_log2 << " fuse_log2=" << fuse_log2
                  << "  " << ns / 1e3 << " us\n";
      if (!have_best || ns < best_ns) {
        best = candidate;
        best_ns = ns;
        have_best = true;
      }
    }
  }
  if (!have_best)
    throw std::invalid_argument("fft_tune: no legal candidate for n=" +
                                std::to_string(n));
  std::cout << "n=" << n << ' ' << to_string(precision)
            << " isa=" << util::to_string(isa)
            << ": best radix_log2=" << best.radix_log2
            << " fuse_log2=" << best.fuse_log2 << "  " << best_ns / 1e3
            << " us (stages="
            << fft::FftPlan(n, best.radix_log2).stage_count() << ")\n";
  return best;
}

/// Hierarchical-path search: the (hier_leaf_log2, hier_block_rows) grid at
/// large n, through an executor whose threshold routes these sizes onto
/// PlanKind::kHierarchical. Every candidate is installed as a one-entry
/// ScheduleSet — the same plan-cache lookup (PlanKey::hier_leaf_log2, the
/// run_hierarchical_locked block-rows override) a production C64FFT_SCHEDULE
/// file drives — so what wins here is exactly what a tuned file replays.
/// Candidate 0 means "planner default" for either knob (leaf derived from
/// the measured cache hierarchy, block rows from the L2 panel policy), so
/// the defaults compete on equal footing and are emitted explicitly only
/// when a non-default setting beats them.
template <typename T>
fft::TunedSchedule tune_hierarchical_one(
    fft::FftExecutor& exec, std::uint64_t n, util::IsaLevel isa,
    const std::vector<std::uint64_t>& leaf_candidates,
    const std::vector<std::uint64_t>& block_rows_candidates, unsigned warmup,
    unsigned reps, std::uint64_t seed, bool verbose) {
  const fft::Precision precision = fft::precision_of<T>;
  const unsigned log2n = util::ilog2(n);
  fft::TunedSchedule best;
  double best_ns = 0.0;
  bool have_best = false;
  for (const std::uint64_t leaf_log2 : leaf_candidates) {
    // A leaf must leave at least one split level (leaf < log2n) and stay
    // inside the schedule format's range; 0 delegates to the planner.
    if (leaf_log2 != 0 && (leaf_log2 < 4 || leaf_log2 > 16 ||
                           leaf_log2 >= log2n))
      continue;
    for (const std::uint64_t block_rows : block_rows_candidates) {
      if (block_rows > 4096) continue;
      fft::TunedSchedule candidate;
      candidate.n = n;
      candidate.precision = precision;
      candidate.isa = isa;
      candidate.hier_leaf_log2 = static_cast<std::uint32_t>(leaf_log2);
      candidate.hier_block_rows = static_cast<std::uint32_t>(block_rows);
      fft::ScheduleSet one;
      one.insert(candidate);
      exec.set_schedules(std::move(one));
      const double ns = median_forward_ns<T>(exec, n, warmup, reps, seed);
      if (verbose)
        std::cout << "  n=" << n << ' ' << to_string(precision)
                  << " isa=" << util::to_string(isa)
                  << " hier_leaf_log2=" << leaf_log2
                  << " hier_block_rows=" << block_rows << "  " << ns / 1e6
                  << " ms\n";
      if (!have_best || ns < best_ns) {
        best = candidate;
        best_ns = ns;
        have_best = true;
      }
    }
  }
  if (!have_best)
    throw std::invalid_argument(
        "fft_tune: no legal hierarchical candidate for n=" +
        std::to_string(n));
  std::cout << "n=" << n << ' ' << to_string(precision)
            << " isa=" << util::to_string(isa)
            << ": best hier_leaf_log2=" << best.hier_leaf_log2
            << " hier_block_rows=" << best.hier_block_rows << "  "
            << best_ns / 1e6 << " ms\n";
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "fft_tune — searches the (radix_log2, fuse_log2) schedule grid per "
      "(size, precision) on the active kernel ISA and emits the winners as "
      "a JSON schedule file for FftExecutor::load_schedules / "
      "C64FFT_SCHEDULE.\nExit codes: 0 success, 2 usage error.");
  cli.add_string("sizes", "1024,4096,16384",
                 "comma-separated transform sizes (powers of two)");
  cli.add_string("precision", "both", "f32 | f64 | both");
  cli.add_string("isa", "auto",
                 "kernel ISA to tune on: scalar | avx2 | avx512 | auto "
                 "(C64FFT_ISA if set, else best supported; requests above "
                 "the host clamp down)");
  cli.add_string("radix", "4,5,6,7,8", "radix_log2 candidates");
  cli.add_string("fuse", "0,2,3", "fuse_log2 candidates (0, 2, 3)");
  cli.add_flag("hierarchical",
               "search the hierarchical-path grid (leaf, block-rows) instead "
               "of (radix, fuse); sizes route through PlanKind::kHierarchical");
  cli.add_string("leaf", "0,10,11,12,14",
                 "hier_leaf_log2 candidates (0 = planner default from the "
                 "measured cache hierarchy)");
  cli.add_string("block-rows", "0,16,32,64",
                 "hier_block_rows candidates (0 = L2 panel policy default)");
  cli.add_int("reps", 31, "timed repetitions per candidate (median wins)");
  cli.add_int("warmup", 5, "untimed warm-up repetitions per candidate");
  cli.add_int("workers", 1,
              "executor team size while tuning (1 = least timing noise)");
  cli.add_int("seed", 42, "PRNG seed for the input signal");
  cli.add_string("emit", "", "write the winning schedules to this JSON file");
  cli.add_flag("verbose", "print every candidate's timing, not just winners");

  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::vector<std::uint64_t> sizes =
        parse_u64_list(cli.get_string("sizes"), "--sizes");
    for (const std::uint64_t n : sizes)
      if (!util::is_pow2(n) || n < 2)
        throw std::invalid_argument("--sizes: " + std::to_string(n) +
                                    " is not a power of two >= 2");
    const std::vector<std::uint64_t> radix_candidates =
        parse_u64_list(cli.get_string("radix"), "--radix");
    const std::vector<std::uint64_t> fuse_candidates =
        parse_u64_list(cli.get_string("fuse"), "--fuse");
    for (const std::uint64_t f : fuse_candidates)
      if (f != 0 && f != 2 && f != 3)
        throw std::invalid_argument("--fuse: fuse_log2 must be 0, 2, or 3");

    const std::string precision = cli.get_string("precision");
    const bool do_f32 = precision == "f32" || precision == "both";
    const bool do_f64 = precision == "f64" || precision == "both";
    if (!do_f32 && !do_f64)
      throw std::invalid_argument("--precision: expected f32 | f64 | both");

    const std::string isa_flag = cli.get_string("isa");
    util::IsaLevel isa;
    if (isa_flag == "auto") {
      // "auto" honors C64FFT_ISA like every other entry point (a forced
      // scalar environment must tune what it will run), falling back to
      // the cpuid probe when the variable is unset.
      isa = fft::kernels::reset_kernel_isa_from_env();
    } else {
      const std::optional<util::IsaLevel> requested =
          util::parse_isa_name(isa_flag);
      if (!requested)
        throw std::invalid_argument("--isa: unknown level \"" + isa_flag +
                                    "\"");
      // set_kernel_isa clamps to what the host supports; record the level
      // the kernels actually run at, never the request.
      isa = fft::kernels::set_kernel_isa(*requested);
      if (isa != *requested)
        std::cout << "note: host does not support "
                  << util::to_string(*requested) << "; tuning on "
                  << util::to_string(isa) << " instead\n";
    }

    const unsigned reps = static_cast<unsigned>(
        std::max<std::int64_t>(1, cli.get_int("reps")));
    const unsigned warmup =
        static_cast<unsigned>(std::max<std::int64_t>(0, cli.get_int("warmup")));
    const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    const bool hierarchical = cli.flag("hierarchical");
    fft::ExecutorOptions opts;
    opts.workers = static_cast<unsigned>(
        std::max<std::int64_t>(1, cli.get_int("workers")));
    if (hierarchical) {
      // Route every tuned size onto the hierarchical path regardless of
      // the default threshold — the grid being searched only executes
      // there.
      opts.hierarchical_threshold_log2 = 2;
    }
    fft::FftExecutor exec(opts);

    const std::vector<std::uint64_t> leaf_candidates =
        parse_u64_list(cli.get_string("leaf"), "--leaf");
    const std::vector<std::uint64_t> block_rows_candidates =
        parse_u64_list(cli.get_string("block-rows"), "--block-rows");

    fft::ScheduleSet winners;
    for (const std::uint64_t n : sizes) {
      if (hierarchical) {
        if (do_f32)
          winners.insert(tune_hierarchical_one<float>(
              exec, n, isa, leaf_candidates, block_rows_candidates, warmup,
              reps, seed, cli.flag("verbose")));
        if (do_f64)
          winners.insert(tune_hierarchical_one<double>(
              exec, n, isa, leaf_candidates, block_rows_candidates, warmup,
              reps, seed, cli.flag("verbose")));
        continue;
      }
      if (do_f32)
        winners.insert(tune_one<float>(exec, n, isa, radix_candidates,
                                       fuse_candidates, warmup, reps, seed,
                                       cli.flag("verbose")));
      if (do_f64)
        winners.insert(tune_one<double>(exec, n, isa, radix_candidates,
                                        fuse_candidates, warmup, reps, seed,
                                        cli.flag("verbose")));
    }

    const std::string emit = cli.get_string("emit");
    if (!emit.empty()) {
      std::ofstream out(emit);
      if (!out) throw std::runtime_error("fft_tune: cannot write " + emit);
      out << winners.to_json();
      std::cout << "wrote " << winners.size() << " schedule(s) to " << emit
                << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fft_tune: " << e.what() << '\n';
    std::cerr << cli.help();
    return 2;
  }
}
