// lint_check — the lint-metrics baseline gate behind the "lint_check"
// ctest. Recomputes the pipeline verifier's schedule-shape metrics for
// every shipped composite shape x precision and diffs them against the
// committed LINT_baseline.json (bench_check-style). The metrics are
// deterministic functions of the plan algebra, so any drift beyond the
// tolerance means the schedule shape itself changed — a serialized
// phase, a skewed chunk grain, concentrated bank traffic, or a coverage
// proof that started failing.
//
//   lint_check --baseline=LINT_baseline.json
//   lint_check --write-baseline=LINT_baseline.json   # regenerate

#include <fstream>
#include <iostream>
#include <string>

#include "analysis/baseline.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

using namespace c64fft;

int main(int argc, char** argv) {
  util::CliParser cli(
      "lint_check — diff the pipeline verifier's schedule-shape metrics "
      "against the committed LINT_baseline.json");
  cli.add_string("baseline", "LINT_baseline.json", "baseline JSON to compare against");
  cli.add_double("tolerance", 0.10,
                 "allowed relative drift per gated metric (deterministic "
                 "numbers: drift means the schedule shape changed)");
  cli.add_int("workers", 4, "worker count the pipeline models grain for");
  cli.add_string("write-baseline", "",
                 "write a fresh baseline to this path and exit (no diff)");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "lint_check: " << e.what() << '\n';
    return 2;
  }

  try {
    const std::vector<analysis::LintBaselineRow> current =
        analysis::collect_lint_rows(static_cast<unsigned>(cli.get_int("workers")));

    const std::string& write_path = cli.get_string("write-baseline");
    if (!write_path.empty()) {
      std::ofstream out(write_path);
      if (!out) {
        std::cerr << "lint_check: cannot write " << write_path << '\n';
        return 2;
      }
      out << analysis::lint_rows_to_json(current);
      std::cout << "lint_check: wrote " << current.size() << " rows to "
                << write_path << '\n';
      return 0;
    }

    const util::JsonValue doc = util::json_parse_file(cli.get_string("baseline"));
    const std::vector<analysis::LintBaselineRow> baseline =
        analysis::lint_rows_from_json(doc);
    analysis::LintGateOptions opts;
    opts.tolerance = cli.get_double("tolerance");
    const std::vector<analysis::LintDelta> deltas =
        analysis::diff_lint_rows(baseline, current, opts);
    std::cout << analysis::format_lint_report(deltas, opts);
    return analysis::has_lint_regression(deltas) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "lint_check: " << e.what() << '\n';
    return 2;
  }
}
