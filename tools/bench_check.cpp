// bench_check — perf-regression gate over google-benchmark JSON reports.
//
// Diffs a fresh benchmark run against a committed baseline and exits
// nonzero when any benchmark got worse than the tolerance allows (or
// disappeared from the report). Wire it after a micro_kernels run:
//
//   bench/micro_kernels --benchmark_out=current.json --benchmark_out_format=json
//   tools/bench_check --baseline=BENCH_baseline.json --current=current.json
//
// Exit status: 0 pass, 1 regression(s), 2 usage/IO errors.

#include <iostream>
#include <string>

#include "util/bench_diff.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace c64fft::util;

  CliParser cli("Compare a google-benchmark JSON report against a baseline.");
  cli.add_string("baseline", "",
                 "committed baseline report (required unless only the "
                 "cross-row ratio gate runs)");
  cli.add_string("current", "", "freshly produced report (required)");
  cli.add_string("metric", "cpu_time",
                 "field to compare: cpu_time, real_time, items_per_second, "
                 "bytes_per_second");
  cli.add_double("tolerance", 0.30,
                 "allowed relative worsening before failing (0.30 = 30%)");
  cli.add_flag("allow-missing",
               "do not fail when a baseline benchmark is absent from the "
               "current report");
  cli.add_string("filter", "",
                 "regex: diff only baseline rows whose name matches (lets "
                 "one baseline file serve several benchmark binaries)");
  cli.add_string("exclude", "",
                 "regex: skip baseline rows whose name matches (applied "
                 "after --filter)");
  cli.add_string("ratio-num", "",
                 "cross-row gate, numerator row name in the CURRENT report "
                 "(e.g. the forced-scalar benchmark)");
  cli.add_string("ratio-den", "",
                 "cross-row gate, denominator row name (e.g. the "
                 "SIMD-dispatched benchmark)");
  cli.add_double("ratio-min", 0.0,
                 "fail unless current[ratio-num] / current[ratio-den] >= "
                 "this (0 disables the gate)");
  cli.add_string("ratio-agg", "value",
                 "how to read each ratio row: value (exact single row) or "
                 "min (minimum over the repetition rows sharing the name "
                 "— the uncontended-time estimate)");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << e.what() << "\n" << cli.help();
    return 2;
  }

  const std::string baseline_path = cli.get_string("baseline");
  const std::string current_path = cli.get_string("current");
  if (current_path.empty()) {
    std::cerr << "bench_check: --current is required\n" << cli.help();
    return 2;
  }

  BenchDiffOptions opts;
  opts.metric = cli.get_string("metric");
  opts.tolerance = cli.get_double("tolerance");
  opts.require_all_baseline = !cli.flag("allow-missing");
  opts.filter = cli.get_string("filter");
  opts.exclude = cli.get_string("exclude");
  if (opts.tolerance < 0.0) {
    std::cerr << "bench_check: tolerance must be >= 0\n";
    return 2;
  }

  const std::string ratio_num = cli.get_string("ratio-num");
  const std::string ratio_den = cli.get_string("ratio-den");
  const double ratio_min = cli.get_double("ratio-min");
  const std::string ratio_agg = cli.get_string("ratio-agg");
  if (ratio_agg != "value" && ratio_agg != "min") {
    std::cerr << "bench_check: --ratio-agg must be value or min\n";
    return 2;
  }
  if ((ratio_min > 0.0) != (!ratio_num.empty() && !ratio_den.empty())) {
    std::cerr << "bench_check: --ratio-min, --ratio-num and --ratio-den must "
                 "be given together\n";
    return 2;
  }
  if (baseline_path.empty() && !(ratio_min > 0.0)) {
    std::cerr << "bench_check: --baseline is required without a ratio gate\n"
              << cli.help();
    return 2;
  }

  try {
    const JsonValue current = json_parse_file(current_path);
    bool failed = false;
    if (!baseline_path.empty()) {
      const JsonValue baseline = json_parse_file(baseline_path);
      const auto deltas = diff_benchmarks(baseline, current, opts);
      std::cout << format_bench_report(deltas, opts);
      failed = has_regression(deltas);
    }
    if (ratio_min > 0.0) {
      // Cross-row speedup gate over the CURRENT report: both rows come
      // from the same run on the same machine, so the ratio is immune to
      // the host-speed drift the per-row tolerance must absorb. With
      // --ratio-agg=min each side is the fastest of its interleaved
      // repetitions — the uncontended-time estimate, immune to the
      // one-sided noise spikes that skew a mean or even a median.
      const bool use_min = ratio_agg == "min";
      const double num = use_min
                             ? benchmark_metric_min(current, ratio_num, opts.metric)
                             : benchmark_metric(current, ratio_num, opts.metric);
      const double den = use_min
                             ? benchmark_metric_min(current, ratio_den, opts.metric)
                             : benchmark_metric(current, ratio_den, opts.metric);
      const double ratio = den > 0.0 ? num / den : 0.0;
      const bool ok = ratio >= ratio_min;
      std::cout << "ratio gate: " << ratio_num << " / " << ratio_den << " = "
                << ratio << " (require >= " << ratio_min << ") "
                << (ok ? "PASS" : "FAIL") << "\n";
      failed |= !ok;
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << e.what() << "\n";
    return 2;
  }
}
