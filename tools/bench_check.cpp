// bench_check — perf-regression gate over google-benchmark JSON reports.
//
// Diffs a fresh benchmark run against a committed baseline and exits
// nonzero when any benchmark got worse than the tolerance allows (or
// disappeared from the report). Wire it after a micro_kernels run:
//
//   bench/micro_kernels --benchmark_out=current.json --benchmark_out_format=json
//   tools/bench_check --baseline=BENCH_baseline.json --current=current.json
//
// Exit status: 0 pass, 1 regression(s), 2 usage/IO errors.

#include <iostream>
#include <string>

#include "util/bench_diff.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace c64fft::util;

  CliParser cli("Compare a google-benchmark JSON report against a baseline.");
  cli.add_string("baseline", "", "committed baseline report (required)");
  cli.add_string("current", "", "freshly produced report (required)");
  cli.add_string("metric", "cpu_time",
                 "field to compare: cpu_time, real_time, items_per_second, "
                 "bytes_per_second");
  cli.add_double("tolerance", 0.30,
                 "allowed relative worsening before failing (0.30 = 30%)");
  cli.add_flag("allow-missing",
               "do not fail when a baseline benchmark is absent from the "
               "current report");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << e.what() << "\n" << cli.help();
    return 2;
  }

  const std::string baseline_path = cli.get_string("baseline");
  const std::string current_path = cli.get_string("current");
  if (baseline_path.empty() || current_path.empty()) {
    std::cerr << "bench_check: --baseline and --current are required\n"
              << cli.help();
    return 2;
  }

  BenchDiffOptions opts;
  opts.metric = cli.get_string("metric");
  opts.tolerance = cli.get_double("tolerance");
  opts.require_all_baseline = !cli.flag("allow-missing");
  if (opts.tolerance < 0.0) {
    std::cerr << "bench_check: tolerance must be >= 0\n";
    return 2;
  }

  try {
    const JsonValue baseline = json_parse_file(baseline_path);
    const JsonValue current = json_parse_file(current_path);
    const auto deltas = diff_benchmarks(baseline, current, opts);
    std::cout << format_bench_report(deltas, opts);
    return has_regression(deltas) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "bench_check: " << e.what() << "\n";
    return 2;
  }
}
