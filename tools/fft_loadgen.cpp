// fft_loadgen — mixed-traffic load generator for the FftServer front-end.
//
// Simulates N clients (round-robined over tenants, priority lanes,
// transform sizes, and precisions), each keeping `outstanding` requests
// in flight against one FftServer. Traffic is callback-driven: every
// request's completion immediately resubmits its buffer in the opposite
// direction (forward/inverse alternation keeps the signal bounded — a
// round trip is numerically ~identity), so the server runs saturated the
// way a busy async front-end does, with zero per-request client-thread
// wakeups polluting the measurement. Every buffer is a zero-copy
// BufferArena lease, filled once and transformed in place for the whole
// run.
//
// Modes:
//   --mode=compare     run BOTH a coalesced and an uncoalesced
//                      (window=0, max-coalesce=1: one request per
//                      executor phase) pass and report the speedup —
//                      the BENCH-gated configuration
//   --mode=coalesced   one coalesced pass
//   --mode=uncoalesced one baseline pass
//
// Reports per pass: transforms/sec, p50/p99/mean/max latency, realized
// coalescing factor, peak queue depth, plan-cache and arena stats, and
// the steady-state serving-layer allocation count. The allocation count
// is measured, not asserted from faith: this binary implements the
// serve/alloc_probe.hpp operator-new counter and hands it to the server
// as ServerOptions::alloc_probe, so the dispatcher splits its thread's
// allocations into executor-internal (the phased scheduler's task
// bookkeeping at workers >= 2) and the serving layer's own. Since
// submit, drain, group, execute, and complete ALL run on the dispatcher
// thread in callback mode, a zero serving-layer delta across the
// measured window certifies the whole submit→complete path.
//
// --json emits the passes as google-benchmark rows (LG_ServeCoalesced /
// LG_ServeUncoalesced; real_time = wall ns per transform) so
// tools/bench_check can gate them against BENCH_baseline.json and ratio-
// gate the coalescing speedup (see tools/run_loadgen_check.cmake).
//
// Exit status: 0 ok, 1 failed assertion (--assert-*), 2 usage/setup.

#define C64FFT_ALLOC_PROBE_IMPLEMENT
#include "serve/alloc_probe.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "util/cli.hpp"

namespace {

using namespace c64fft;
using Clock = std::chrono::steady_clock;

struct ClientShape {
  serve::TenantId tenant = 0;
  std::uint64_t n = 0;
  fft::Precision precision = fft::Precision::kF64;
  serve::Lane lane = serve::Lane::kNormal;
  std::uint64_t seed = 1;
};

/// Counters shared by every flight of one pass.
struct SharedCounters {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> rejected{0};
  std::atomic<std::uint64_t> inflight{0};
  std::atomic<bool> stop{false};
};

/// One self-resubmitting in-flight request: its own arena buffer
/// (concurrent transforms must never share one) alternating directions
/// independently. Lives at a stable address for the whole pass — the
/// completion callback context.
struct Flight {
  serve::FftServer* server = nullptr;
  SharedCounters* shared = nullptr;
  serve::BufferLease lease;
  ClientShape shape;
  serve::Direction next = serve::Direction::kForward;
};

void resubmit(Flight& f);

void on_complete(void* ctx, const serve::Completion& done) {
  Flight& f = *static_cast<Flight*>(ctx);
  SharedCounters& sh = *f.shared;
  if (done.status == serve::RequestStatus::kOk)
    sh.completed.fetch_add(1, std::memory_order_relaxed);
  else
    sh.errors.fetch_add(1, std::memory_order_relaxed);
  if (sh.stop.load(std::memory_order_relaxed)) {
    sh.inflight.fetch_sub(1, std::memory_order_release);
    return;
  }
  resubmit(f);
}

void resubmit(Flight& f) {
  const serve::SubmitResult r =
      f.shape.precision == fft::Precision::kF64
          ? f.server->submit(f.shape.tenant, f.lease.as<fft::cplx>(), f.next,
                             f.shape.lane, &on_complete, &f)
          : f.server->submit(f.shape.tenant, f.lease.as<fft::cplx32>(), f.next,
                             f.shape.lane, &on_complete, &f);
  if (r.status != serve::SubmitStatus::kAccepted) {
    f.shared->rejected.fetch_add(1, std::memory_order_relaxed);
    f.shared->inflight.fetch_sub(1, std::memory_order_release);
    return;
  }
  f.next = f.next == serve::Direction::kForward ? serve::Direction::kInverse
                                                : serve::Direction::kForward;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

template <typename T>
void fill_signal(std::span<std::complex<T>> data, std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& v : data) {
    // Uniform in [-1, 1): bounded magnitude, deterministic per flight.
    const double re = static_cast<double>(splitmix64(s) >> 11) * 0x1p-52 * 2.0 - 1.0;
    const double im = static_cast<double>(splitmix64(s) >> 11) * 0x1p-52 * 2.0 - 1.0;
    v = {static_cast<T>(re), static_cast<T>(im)};
  }
}

struct LoadConfig {
  unsigned clients = 8;
  unsigned tenants = 4;
  unsigned outstanding = 4;
  std::vector<std::uint64_t> sizes;
  bool mixed_precision = true;
  fft::Precision fixed_precision = fft::Precision::kF64;
  std::uint64_t seed = 42;
  unsigned warmup_ms = 100;
  unsigned duration_ms = 400;
  unsigned workers = 1;
  std::size_t queue_capacity = 256;
};

struct PassResult {
  std::string name;
  std::uint64_t completed = 0;  // measured-window completions
  std::uint64_t rejected = 0;
  std::uint64_t errors = 0;
  std::uint64_t dispatch_allocs = 0;  // serving-layer allocs in window
  std::uint64_t executor_allocs = 0;  // executor-internal allocs in window
  double wall_seconds = 0.0;
  double throughput = 0.0;  // transforms/sec over the measured window
  std::uint64_t queue_depth_max = 0;
  serve::ServerStats stats;  // end-of-pass server snapshot
};

PassResult run_pass(const std::string& name, const LoadConfig& cfg,
                    std::uint32_t window_us, std::uint32_t max_coalesce) {
  serve::ServerOptions so;
  so.queue_capacity = cfg.queue_capacity;
  so.coalesce_window_us = window_us;
  so.max_coalesce = max_coalesce;
  so.workers = cfg.workers;
  const std::uint64_t max_n =
      *std::max_element(cfg.sizes.begin(), cfg.sizes.end());
  so.arena.slab_bytes = max_n * sizeof(fft::cplx);
  so.arena.slab_count = std::size_t{cfg.clients} * cfg.outstanding + 4;
  // This binary implements the allocation probe; hand the sampler to the
  // server so its stats split executor-internal allocations from the
  // serving layer's own (the count gated at zero).
  so.alloc_probe = &serve::thread_alloc_count;
  serve::FftServer server(so);

  // Every tenant gets room for all its flights' slabs and for every
  // (size, precision) combination in the mix — loadgen stresses the
  // steady state, not the rejection paths (tests/test_serve does that).
  const unsigned per_tenant =
      ((cfg.clients + cfg.tenants - 1) / cfg.tenants + 1) * cfg.outstanding;
  std::vector<serve::TenantId> tenants(cfg.tenants);
  for (unsigned t = 0; t < cfg.tenants; ++t) {
    serve::TenantQuota q;
    q.max_arena_bytes = so.arena.slab_bytes * per_tenant;
    q.max_plan_shapes = cfg.sizes.size() * 2;
    tenants[t] = server.add_tenant(q);
  }

  SharedCounters shared;
  std::vector<Flight> flights(std::size_t{cfg.clients} * cfg.outstanding);
  std::uint64_t seed_state = cfg.seed;
  PassResult pass;
  pass.name = name;
  for (unsigned c = 0; c < cfg.clients; ++c) {
    ClientShape shape;
    shape.tenant = tenants[c % cfg.tenants];
    shape.n = cfg.sizes[c % cfg.sizes.size()];
    shape.precision = cfg.mixed_precision
                          ? ((c / 2) % 2 == 0 ? fft::Precision::kF64
                                              : fft::Precision::kF32)
                          : cfg.fixed_precision;
    shape.lane = static_cast<serve::Lane>(c % serve::kLaneCount);
    const std::size_t elem = shape.precision == fft::Precision::kF64
                                 ? sizeof(fft::cplx)
                                 : sizeof(fft::cplx32);
    for (unsigned o = 0; o < cfg.outstanding; ++o) {
      Flight& f = flights[std::size_t{c} * cfg.outstanding + o];
      f.server = &server;
      f.shared = &shared;
      f.shape = shape;
      f.shape.seed = splitmix64(seed_state);
      auto leased = server.arena().lease(shape.tenant, shape.n * elem);
      if (leased.status != serve::LeaseStatus::kOk) {
        ++pass.errors;
        continue;
      }
      f.lease = std::move(leased.lease);
      if (shape.precision == fft::Precision::kF64)
        fill_signal<double>(f.lease.as<fft::cplx>(), f.shape.seed);
      else
        fill_signal<float>(f.lease.as<fft::cplx32>(), f.shape.seed);
    }
  }

  // Launch every flight; from here the traffic self-sustains via the
  // completion callbacks until `stop` is raised.
  std::uint64_t launched = 0;
  for (Flight& f : flights)
    if (f.lease.valid()) ++launched;
  shared.inflight.store(launched, std::memory_order_relaxed);
  for (Flight& f : flights)
    if (f.lease.valid()) resubmit(f);

  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.warmup_ms));
  const std::uint64_t c0 = shared.completed.load(std::memory_order_relaxed);
  const serve::ServerStats st0 = server.stats();
  const Clock::time_point t0 = Clock::now();
  const Clock::time_point deadline =
      t0 + std::chrono::milliseconds(cfg.duration_ms);
  while (Clock::now() < deadline) {
    pass.queue_depth_max =
        std::max(pass.queue_depth_max, server.stats().queue_depth);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const std::uint64_t c1 = shared.completed.load(std::memory_order_relaxed);
  const serve::ServerStats st1 = server.stats();
  pass.wall_seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  shared.stop.store(true, std::memory_order_relaxed);
  while (shared.inflight.load(std::memory_order_acquire) > 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  pass.completed = c1 - c0;
  pass.dispatch_allocs = st1.dispatch_allocs - st0.dispatch_allocs;
  pass.executor_allocs = st1.executor_allocs - st0.executor_allocs;
  pass.rejected = shared.rejected.load(std::memory_order_relaxed);
  pass.errors += shared.errors.load(std::memory_order_relaxed);
  pass.throughput = pass.wall_seconds > 0.0
                        ? static_cast<double>(pass.completed) / pass.wall_seconds
                        : 0.0;
  pass.stats = server.stats();
  server.shutdown();
  return pass;
}

void print_pass(const PassResult& p) {
  const serve::ServerStats& st = p.stats;
  std::cout << p.name << ":\n"
            << "  transforms/sec     " << static_cast<std::uint64_t>(p.throughput)
            << "  (" << p.completed << " in " << p.wall_seconds << " s)\n"
            << "  latency ns         p50=" << static_cast<std::uint64_t>(st.latency.p50_ns)
            << " p99=" << static_cast<std::uint64_t>(st.latency.p99_ns)
            << " mean=" << static_cast<std::uint64_t>(st.latency.mean_ns)
            << " max=" << st.latency.max_ns << "\n"
            << "  coalescing factor  " << st.coalescing_factor << "  ("
            << st.completed << " transforms / " << st.batches << " executor batches)\n"
            << "  queue depth        peak=" << p.queue_depth_max << "\n"
            << "  scheduler          phases=" << st.phases
            << " codelets=" << st.codelets << "\n"
            << "  serve-layer allocs " << p.dispatch_allocs
            << " (submit->complete path, measured window; executor-internal "
            << p.executor_allocs << ")\n"
            << "  rejected           " << p.rejected << "  errors " << p.errors << "\n"
            << "  plan cache         hits=" << st.executor.cache.hits
            << " misses=" << st.executor.cache.misses
            << " evictions=" << st.executor.cache.evictions
            << " entries=" << st.executor.cache.entries << "\n"
            << "  arena              leases=" << st.arena.leases
            << " rejected=" << st.arena.rejected
            << " slabs=" << st.arena.slab_count << "x" << st.arena.slab_bytes
            << "B\n";
}

void json_row(std::ostream& out, const PassResult& p, bool last) {
  const double per_item_ns =
      p.completed > 0 ? p.wall_seconds * 1e9 / static_cast<double>(p.completed) : 0.0;
  out << "    {\n"
      << "      \"name\": \"" << p.name << "\",\n"
      << "      \"run_name\": \"" << p.name << "\",\n"
      << "      \"run_type\": \"iteration\",\n"
      << "      \"repetitions\": 1,\n"
      << "      \"iterations\": " << p.completed << ",\n"
      << "      \"real_time\": " << per_item_ns << ",\n"
      << "      \"cpu_time\": " << per_item_ns << ",\n"
      << "      \"time_unit\": \"ns\",\n"
      << "      \"items_per_second\": " << p.throughput << ",\n"
      << "      \"coalescing_factor\": " << p.stats.coalescing_factor << ",\n"
      << "      \"p50_ns\": " << p.stats.latency.p50_ns << ",\n"
      << "      \"p99_ns\": " << p.stats.latency.p99_ns << ",\n"
      << "      \"dispatch_allocs\": " << p.dispatch_allocs << ",\n"
      << "      \"executor_allocs\": " << p.executor_allocs << "\n"
      << "    }" << (last ? "\n" : ",\n");
}

std::vector<std::uint64_t> parse_sizes(const std::string& csv) {
  std::vector<std::uint64_t> sizes;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    sizes.push_back(std::stoull(tok));
  }
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  using c64fft::util::CliParser;

  CliParser cli(
      "Mixed-traffic load generator for the FftServer serving front-end.");
  cli.add_int("clients", 8, "simulated clients (tenant/size/precision/lane mix)");
  cli.add_int("tenants", 4, "tenants the clients round-robin over");
  cli.add_int("outstanding", 4, "pipelined in-flight requests per client");
  cli.add_string("sizes", "256,512",
                 "comma-separated transform lengths (any length >= 2: pow2 "
                 "runs the classic plans, 7-smooth composites mixed-radix, "
                 "primes Bluestein)");
  cli.add_string("precision", "mixed", "mixed, f32, or f64");
  cli.add_int("warmup-ms", 100, "unmeasured warmup before the window");
  cli.add_int("duration-ms", 400, "measured wall-clock duration per pass");
  cli.add_int("window-us", 200, "coalescing window of the coalesced pass");
  cli.add_int("max-coalesce", 0,
              "batch bound of the coalesced pass (0 = clients x outstanding)");
  cli.add_int("queue-capacity", 256, "server slot-pool size");
  cli.add_int("workers", 1, "executor worker-team size");
  cli.add_int("seed", 42, "signal/shape seed");
  cli.add_string("mode", "compare", "compare, coalesced, or uncoalesced");
  cli.add_string("json", "", "write google-benchmark JSON (LG_* rows) here");
  cli.add_double("assert-min-throughput", 0.0,
                 "fail (exit 1) unless every pass reaches this transforms/sec");
  cli.add_double("assert-min-coalesce", 0.0,
                 "fail unless the coalesced pass's coalescing factor "
                 "reaches this");
  cli.add_flag("assert-zero-alloc",
               "fail if the dispatcher allocated inside the measured "
               "window (steady-state zero-allocation contract)");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "fft_loadgen: " << e.what() << "\n" << cli.help();
    return 2;
  }

  LoadConfig cfg;
  cfg.clients = static_cast<unsigned>(std::max<std::int64_t>(1, cli.get_int("clients")));
  cfg.tenants = static_cast<unsigned>(
      std::clamp<std::int64_t>(cli.get_int("tenants"), 1, cfg.clients));
  cfg.outstanding = static_cast<unsigned>(
      std::clamp<std::int64_t>(cli.get_int("outstanding"), 1, 64));
  cfg.sizes = parse_sizes(cli.get_string("sizes"));
  cfg.warmup_ms = static_cast<unsigned>(std::max<std::int64_t>(0, cli.get_int("warmup-ms")));
  cfg.duration_ms = static_cast<unsigned>(std::max<std::int64_t>(1, cli.get_int("duration-ms")));
  cfg.workers = static_cast<unsigned>(std::max<std::int64_t>(1, cli.get_int("workers")));
  cfg.queue_capacity = static_cast<std::size_t>(std::max<std::int64_t>(8, cli.get_int("queue-capacity")));
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const std::string precision = cli.get_string("precision");
  if (precision == "mixed") {
    cfg.mixed_precision = true;
  } else if (precision == "f32" || precision == "f64") {
    cfg.mixed_precision = false;
    cfg.fixed_precision =
        precision == "f32" ? c64fft::fft::Precision::kF32 : c64fft::fft::Precision::kF64;
  } else {
    std::cerr << "fft_loadgen: --precision must be mixed, f32, or f64\n";
    return 2;
  }
  if (cfg.sizes.empty()) {
    std::cerr << "fft_loadgen: --sizes must name at least one length\n";
    return 2;
  }
  // Any length >= 2 is servable — the server routes composite sizes to
  // the mixed-radix plan and primes to Bluestein, same as the executor.
  for (const std::uint64_t n : cfg.sizes) {
    if (n < 2) {
      std::cerr << "fft_loadgen: size " << n << " must be >= 2\n";
      return 2;
    }
  }
  if (std::size_t{cfg.clients} * cfg.outstanding > cfg.queue_capacity) {
    std::cerr << "fft_loadgen: clients x outstanding ("
              << cfg.clients * cfg.outstanding << ") exceeds --queue-capacity ("
              << cfg.queue_capacity << ")\n";
    return 2;
  }
  const std::string mode = cli.get_string("mode");
  if (mode != "compare" && mode != "coalesced" && mode != "uncoalesced") {
    std::cerr << "fft_loadgen: --mode must be compare, coalesced, or uncoalesced\n";
    return 2;
  }
  const auto window_us = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, cli.get_int("window-us")));
  auto max_coalesce = static_cast<std::uint32_t>(
      std::max<std::int64_t>(0, cli.get_int("max-coalesce")));
  if (max_coalesce == 0) max_coalesce = cfg.clients * cfg.outstanding;

  std::vector<PassResult> passes;
  try {
    if (mode != "uncoalesced")
      passes.push_back(run_pass("LG_ServeCoalesced", cfg, window_us, max_coalesce));
    if (mode != "coalesced")
      passes.push_back(run_pass("LG_ServeUncoalesced", cfg, 0, 1));
  } catch (const std::exception& e) {
    std::cerr << "fft_loadgen: " << e.what() << "\n";
    return 2;
  }

  for (const PassResult& p : passes) print_pass(p);
  if (passes.size() == 2 && passes[1].throughput > 0.0)
    std::cout << "coalesced speedup    "
              << passes[0].throughput / passes[1].throughput
              << "x over one-request-per-phase baseline\n";

  const std::string json_path = cli.get_string("json");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "fft_loadgen: cannot write " << json_path << "\n";
      return 2;
    }
    out << "{\n  \"context\": {\n"
        << "    \"executable\": \"fft_loadgen\",\n"
        << "    \"clients\": " << cfg.clients << ",\n"
        << "    \"tenants\": " << cfg.tenants << ",\n"
        << "    \"outstanding\": " << cfg.outstanding << ",\n"
        << "    \"duration_ms\": " << cfg.duration_ms << "\n"
        << "  },\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < passes.size(); ++i)
      json_row(out, passes[i], i + 1 == passes.size());
    out << "  ]\n}\n";
  }

  bool failed = false;
  const double min_tput = cli.get_double("assert-min-throughput");
  const double min_coalesce = cli.get_double("assert-min-coalesce");
  for (const PassResult& p : passes) {
    if (p.errors > 0) {
      std::cerr << "fft_loadgen: " << p.name << ": " << p.errors
                << " request(s) completed with errors\n";
      failed = true;
    }
    if (min_tput > 0.0 && p.throughput < min_tput) {
      std::cerr << "fft_loadgen: " << p.name << ": throughput " << p.throughput
                << " < required " << min_tput << "\n";
      failed = true;
    }
    if (min_coalesce > 0.0 && p.name == "LG_ServeCoalesced" &&
        p.stats.coalescing_factor < min_coalesce) {
      std::cerr << "fft_loadgen: coalescing factor " << p.stats.coalescing_factor
                << " < required " << min_coalesce << "\n";
      failed = true;
    }
    if (cli.flag("assert-zero-alloc") && p.dispatch_allocs > 0) {
      std::cerr << "fft_loadgen: " << p.name << ": " << p.dispatch_allocs
                << " steady-state serving-layer allocation(s)\n";
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
