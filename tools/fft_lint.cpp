// fft_lint — static plan verifier, schedule race lint, whole-pipeline
// write-coverage proof and critical-path/load cost model.
//
// Per-plan checks (classic plans): the codelet graph (acyclicity, counter
// thresholds, orphans, deadlock-freedom), a race-freedom proof from the
// footprint algebra, the DRAM bank balance of the chosen twiddle layout,
// and optionally (--cache-sets) the host cache-set conflict report.
// Whole-pipeline checks (--coverage / --critical-path, or any composite
// --plan-kind): the write-coverage / single-assignment proof and the
// critical-path & load cost model over the composite pipeline model
// (transposes, sub-FFT sweeps, pack/untangle passes) built from the same
// hooks the executor runs, plus the per-level tile-traffic report
// (transpose vs butterfly bytes per phase). --all statically verifies the
// full shipped matrix: every Table-I schedule/layout variant plus every
// composite kind (classic, four-step, hierarchical — single- and
// multi-level, batch, 2-D, real, mixed-radix, bluestein) at both
// precisions. --size lints an exact (possibly composite) length, which
// the auto routing sends down the factorization-driven paths.
//
// Pipeline models record the kernel dispatch table ("scalar" / "avx2" /
// "avx512") the runtime would execute with; the kernel check validates
// the id against the dispatch registry and host cpuid support. --isa=X
// forces the level before the models are built (clamped to hardware
// support, like C64FFT_ISA), so a lint of the forced-scalar CI lane
// verifies the same configuration that lane runs.
//
// Exit status classifies the most fundamental failed check so CI can
// triage without parsing:
//   0  every check passed (warnings allowed unless --strict-*)
//   1  errors of no classified check (unexpected)
//   2  usage / model-construction error
//   3  graph check failed (cycle, counter mismatch, deadlock)
//   4  race check failed
//   5  coverage proof failed (write-overlap, aliasing, gap, oob)
//   6  cost model failed (--strict-cost imbalance)
//   7  bank / cache-set lint failed (--strict-banks / --strict-sets)
//
//   fft_lint --logn=12 --layout=linear --schedule=fine --json
//   fft_lint --all-variants             # every shipped Table-I variant
//   fft_lint --plan-kind=four-step --logn=18 --coverage --critical-path
//   fft_lint --all                      # full shipped matrix, all checks

#include <algorithm>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "fft/executor.hpp"
#include "fft/kernels/dispatch.hpp"
#include "util/cli.hpp"
#include "util/cpu_features.hpp"

using namespace c64fft;

namespace {

struct VariantSpec {
  const char* name;
  analysis::Schedule schedule;
  fft::TwiddleLayout layout;
};

// The shipped plan variants of the paper's Table I: the three schedulers,
// each with the linear and the bit-reversed ("hashed") twiddle layout.
constexpr VariantSpec kShippedVariants[] = {
    {"coarse/linear", analysis::Schedule::kBarrier, fft::TwiddleLayout::kLinear},
    {"coarse/hashed", analysis::Schedule::kBarrier, fft::TwiddleLayout::kBitReversed},
    {"fine/linear", analysis::Schedule::kCounters, fft::TwiddleLayout::kLinear},
    {"fine/hashed", analysis::Schedule::kCounters, fft::TwiddleLayout::kBitReversed},
    {"guided/linear", analysis::Schedule::kCounters, fft::TwiddleLayout::kLinear},
    {"guided/hashed", analysis::Schedule::kCounters, fft::TwiddleLayout::kBitReversed},
};

void print_human(const analysis::AnalysisReport& report) {
  std::cout << report.plan_name << ": n=" << report.n << " radix=2^" << report.radix_log2
            << " stages=" << report.stages << " codelets=" << report.codelets;
  // Pipeline reports carry the kernel dispatch id in the layout slot.
  if (report.schedule == "pipeline" && !report.layout.empty())
    std::cout << " isa=" << report.layout;
  std::cout << '\n';
  for (const auto& check : report.checks) {
    std::cout << "  [" << check.status << "] " << check.name;
    if (!check.note.empty()) std::cout << " (" << check.note << ')';
    std::cout << '\n';
    for (const auto& d : check.diagnostics)
      std::cout << "    " << to_string(d.severity) << " [" << d.code << "] " << d.message
                << '\n';
  }
  std::cout << "  => " << report.status() << " (" << report.errors() << " error(s), "
            << report.warnings() << " warning(s))\n";
}

/// Exit code of the most fundamental failed check across all reports.
int classify_exit(const std::vector<analysis::AnalysisReport>& reports) {
  bool any_error = false;
  bool graph = false, races = false, coverage = false, cost = false,
       banks = false, kernel = false;
  for (const analysis::AnalysisReport& r : reports) {
    for (const analysis::CheckResult& c : r.checks) {
      if (c.errors() == 0) continue;
      any_error = true;
      graph |= c.name == "graph";
      races |= c.name == "races";
      coverage |= c.name == "coverage";
      cost |= c.name == "cost" || c.name == "tile-traffic";
      banks |= c.name == "banks" || c.name == "cache-sets";
      kernel |= c.name == "kernel";
    }
  }
  // A bad kernel-isa id is a model-construction error: the usage class.
  if (kernel) return 2;
  if (graph) return 3;
  if (races) return 4;
  if (coverage) return 5;
  if (cost) return 6;
  if (banks) return 7;
  return any_error ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "fft_lint — static plan verifier, schedule race lint, pipeline "
      "write-coverage proof and critical-path cost model.\n"
      "Exit codes: 0 pass, 1 unclassified error, 2 usage error, 3 graph "
      "check failed, 4 race check failed, 5 coverage proof failed, 6 cost "
      "model failed, 7 bank/cache-set lint failed (most fundamental check "
      "wins)");
  cli.add_int("logn", 12, "log2 of the FFT size to lint");
  cli.add_int("size", 0,
              "exact transform size; overrides --logn (composite sizes "
              "route to mixed-radix, primes to bluestein under auto)");
  cli.add_int("radix-log2", 6, "log2 of the codelet radix (paper: 6)");
  cli.add_string("layout", "linear", "twiddle layout: linear | hashed");
  cli.add_string("schedule", "fine", "scheduler: coarse | fine | guided");
  cli.add_string("plan-kind", "classic",
                 "pipeline shape: classic | four-step | hierarchical | "
                 "batch | fft2d | real | mixed-radix | bluestein | auto "
                 "(executor routing for the linted size)");
  cli.add_int("batch", 8, "transforms per batch for --plan-kind=batch");
  cli.add_int("leaf-log2", 0,
              "hierarchical leaf cap (log2 points); 0 derives it from the "
              "host L2 like the executor");
  cli.add_int("block-rows", 0,
              "rows per hierarchical pipeline block; 0 = the executor's "
              "grain policy");
  cli.add_int("rows-log2", 6, "log2 of the matrix rows for --plan-kind=fft2d");
  cli.add_int("cols-log2", 6, "log2 of the matrix cols for --plan-kind=fft2d");
  cli.add_int("workers", 4,
              "worker count the pipeline model grains its sweeps for");
  cli.add_string("isa", "auto",
                 "kernel dispatch level the pipeline models record: scalar "
                 "| avx2 | avx512 | auto (clamped to hardware support)");
  cli.add_flag("coverage",
               "run the pipeline write-coverage proof (implied by composite "
               "plan kinds and --all)");
  cli.add_flag("critical-path",
               "run the pipeline critical-path/load cost model (implied by "
               "composite plan kinds and --all)");
  cli.add_flag("strict-cost", "report cost findings as errors, not warnings");
  cli.add_int("banks", 4, "DRAM banks of the modelled chip");
  cli.add_int("interleave", 64, "bank interleave in bytes");
  cli.add_int("element-bytes", 0,
              "complex element size for the byte-level lints: 16 (f64), 8 "
              "(f32), or 0 to use the model's width");
  cli.add_double("imbalance-threshold", 1.5, "flag max/mean bank ratio above this");
  cli.add_flag("strict-banks", "report bank findings as errors, not warnings");
  cli.add_flag("cache-sets",
               "also report host cache-set conflicts (stride -> set-index "
               "histogram of the data stream, per stage)");
  cli.add_int("sets", 64, "cache sets of the modelled host cache");
  cli.add_int("cache-line", 64, "cache line size in bytes");
  cli.add_double("set-coverage", 0.5,
                 "flag stages touching less than this fraction of the sets");
  cli.add_flag("strict-sets", "report cache-set findings as errors, not warnings");
  cli.add_flag("all-variants", "lint every shipped Table-I plan variant");
  cli.add_flag("all",
               "statically verify the whole shipped matrix: every Table-I "
               "variant plus every composite plan kind, both precisions");
  cli.add_string("seed-defect", "",
                 "inject a known defect to exercise the exit codes: cycle | "
                 "race | tile-overlap | skew");
  cli.add_flag("cache-stats",
               "after linting, execute each verified shape once through a "
               "private executor (both precisions, serial) and print the "
               "plan-cache residency picture: hits, misses, evictions, "
               "entries");
  cli.add_flag("json", "emit the JSON report on stdout");
  cli.add_string("json-file", "", "also write the JSON report to this path");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "fft_lint: " << e.what() << '\n';
    return 2;
  }

  const int elem_bytes = static_cast<int>(cli.get_int("element-bytes"));
  if (elem_bytes != 0 && elem_bytes != 8 && elem_bytes != 16) {
    std::cerr << "fft_lint: --element-bytes must be 8, 16 or 0 (model width)\n";
    return 2;
  }

  const std::string& isa_name = cli.get_string("isa");
  const std::optional<util::IsaLevel> isa = util::parse_isa_name(isa_name);
  if (!isa) {
    std::cerr << "fft_lint: unknown --isa '" << isa_name
              << "' (scalar | avx2 | avx512 | auto)\n";
    return 2;
  }
  const util::IsaLevel active = fft::kernels::set_kernel_isa(*isa);
  if (active != *isa)
    std::cerr << "fft_lint: --isa=" << isa_name << " not supported here, using "
              << util::to_string(active) << '\n';

  analysis::AnalysisOptions opts;
  opts.banks.banks = static_cast<unsigned>(cli.get_int("banks"));
  opts.banks.interleave_bytes = static_cast<unsigned>(cli.get_int("interleave"));
  opts.banks.element_bytes = static_cast<unsigned>(elem_bytes);
  opts.banks.imbalance_threshold = cli.get_double("imbalance-threshold");
  opts.banks.strict = cli.flag("strict-banks");
  opts.check_cache_sets = cli.flag("cache-sets");
  opts.cache_sets.sets = static_cast<unsigned>(cli.get_int("sets"));
  opts.cache_sets.line_bytes = static_cast<unsigned>(cli.get_int("cache-line"));
  opts.cache_sets.element_bytes = static_cast<unsigned>(elem_bytes);
  opts.cache_sets.min_set_coverage = cli.get_double("set-coverage");
  opts.cache_sets.strict = cli.flag("strict-sets");

  analysis::PipelineAnalysisOptions pipe_opts;
  const unsigned workers = static_cast<unsigned>(cli.get_int("workers"));
  pipe_opts.cost.workers = workers;
  pipe_opts.cost.banks = opts.banks.banks;
  pipe_opts.cost.interleave_bytes = opts.banks.interleave_bytes;
  pipe_opts.cost.strict = cli.flag("strict-cost");

  analysis::PipelineBuildOptions build;
  build.workers = workers;
  build.element_bytes = elem_bytes == 0 ? 16 : static_cast<unsigned>(elem_bytes);
  build.layout = cli.get_string("layout") == "hashed"
                     ? fft::TwiddleLayout::kBitReversed
                     : fft::TwiddleLayout::kLinear;
  build.hier_leaf_log2 = static_cast<unsigned>(cli.get_int("leaf-log2"));
  build.hier_block_rows =
      static_cast<std::uint64_t>(cli.get_int("block-rows"));
  pipe_opts.tile_traffic.strict = cli.flag("strict-cost");

  const std::uint64_t n =
      cli.get_int("size") != 0
          ? static_cast<std::uint64_t>(cli.get_int("size"))
          : std::uint64_t{1} << cli.get_int("logn");
  const auto radix_log2 = static_cast<unsigned>(cli.get_int("radix-log2"));

  std::vector<analysis::AnalysisReport> reports;
  try {
    const std::string& defect = cli.get_string("seed-defect");
    if (!defect.empty()) {
      // Each seed builds a correct model, breaks it the way a real bug
      // would, and lets the normal checks catch it — the CLI-level twin
      // of the seeded-defect unit tests, pinning the exit-code contract.
      if (defect == "cycle") {
        analysis::PlanModel m = analysis::build_model(
            fft::FftPlan(n, radix_log2), build.layout,
            analysis::Schedule::kCounters, "seeded-cycle");
        m.graph.add_edge(m.codelets.back().key, m.codelets.front().key);
        reports.push_back(analysis::analyze(m, opts));
      } else if (defect == "race") {
        analysis::PlanModel m = analysis::build_model(
            fft::FftPlan(n, radix_log2), build.layout,
            analysis::Schedule::kCounters, "seeded-race");
        // Task 1 of stage 0 also writes task 0's first element: a
        // write-write conflict between unordered siblings.
        m.codelets[1].writes.push_back(m.codelets[0].writes.front());
        reports.push_back(analysis::analyze(m, opts));
      } else if (defect == "tile-overlap") {
        analysis::PipelineModel m = analysis::build_four_step_pipeline(
            std::max<std::uint64_t>(n, 4), radix_log2, build, "seeded-overlap");
        // Second transpose tile re-writes the first tile's first element.
        analysis::PhaseModel& phase = m.phases.front();
        phase.tasks[1].writes.push_back(phase.tasks[0].writes.front());
        reports.push_back(analysis::analyze_pipeline(m, pipe_opts));
      } else if (defect == "skew") {
        analysis::PipelineModel m = analysis::build_classic_pipeline(
            fft::FftPlan(n, radix_log2), build, "seeded-skew");
        // One codelet of the last stage suddenly streams its footprint
        // 64x: the skewed-chunk signature the cost model flags.
        m.phases.back().tasks.front().passes *= 64;
        reports.push_back(analysis::analyze_pipeline(m, pipe_opts));
      } else {
        std::cerr << "fft_lint: unknown --seed-defect '" << defect << "'\n";
        return 2;
      }
    } else if (cli.flag("all")) {
      for (unsigned eb : {16u, 8u}) {
        analysis::AnalysisOptions popts = opts;
        popts.banks.element_bytes = eb;
        popts.cache_sets.element_bytes = eb;
        analysis::PipelineBuildOptions b = build;
        b.element_bytes = eb;
        const std::string prec = eb == 16 ? " f64" : " f32";
        const fft::FftPlan plan(n, radix_log2);
        for (const VariantSpec& v : kShippedVariants)
          reports.push_back(analysis::analyze_plan(plan, v.layout, v.schedule,
                                                   popts, v.name + prec));
        b.layout = fft::TwiddleLayout::kLinear;
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_classic_pipeline(plan, b, "classic" + prec),
            pipe_opts));
        b.layout = fft::TwiddleLayout::kBitReversed;
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_classic_pipeline(plan, b, "classic/hashed" + prec),
            pipe_opts));
        b.layout = fft::TwiddleLayout::kLinear;
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_four_step_pipeline(std::uint64_t{1} << 18, 6, b,
                                               "four-step" + prec),
            pipe_opts));
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_hierarchical_pipeline(
                std::uint64_t{1} << 18, 6, b, "hierarchical" + prec),
            pipe_opts));
        {
          // Forced-small leaf so the multi-level (col-recursive) shape is
          // statically verified too, at a size the element-exact
          // footprints afford.
          analysis::PipelineBuildOptions ml = b;
          ml.hier_leaf_log2 = 6;  // 2^19 -> 2^13 x 2^6 -> (2^7 x 2^6) x 2^6
          reports.push_back(analysis::analyze_pipeline(
              analysis::build_hierarchical_pipeline(
                  std::uint64_t{1} << 19, 6, ml, "hierarchical-3l" + prec),
              pipe_opts));
        }
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_batch_pipeline(fft::FftPlan(256, 6), 8, b,
                                           "batch8" + prec),
            pipe_opts));
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_fft2d_pipeline(64, 64, 6, b, "fft2d-64x64" + prec),
            pipe_opts));
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_fft2d_pipeline(32, 64, 6, b, "fft2d-32x64" + prec),
            pipe_opts));
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_real_fft_pipeline(4096, 6, b, "real" + prec),
            pipe_opts));
        // The factorization-driven arbitrary-N paths: a 7-smooth
        // composite through the mixed-radix pipeline and a prime through
        // the Bluestein chirp-z hull (inner 256-point classic conv).
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_mixed_radix_pipeline(1000, b,
                                                 "mixed-radix-1000" + prec),
            pipe_opts));
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_bluestein_pipeline(101, 6, b,
                                               "bluestein-101" + prec),
            pipe_opts));
      }
    } else {
      std::string kind = cli.get_string("plan-kind");
      if (kind == "auto") {
        switch (fft::routed_plan_kind(n, fft::kDefaultFourStepThresholdLog2,
                                      fft::kDefaultHierarchicalThresholdLog2)) {
          case fft::PlanKind::kHierarchical: kind = "hierarchical"; break;
          case fft::PlanKind::kFourStep: kind = "four-step"; break;
          case fft::PlanKind::kMixedRadix: kind = "mixed-radix"; break;
          case fft::PlanKind::kBluestein: kind = "bluestein"; break;
          default: kind = "classic"; break;
        }
      }
      const bool want_pipeline = cli.flag("coverage") || cli.flag("critical-path");
      if (cli.flag("coverage") != cli.flag("critical-path")) {
        pipe_opts.check_coverage = cli.flag("coverage");
        pipe_opts.check_cost = cli.flag("critical-path");
      }
      if (kind == "classic") {
        std::vector<VariantSpec> variants;
        if (cli.flag("all-variants")) {
          variants.assign(std::begin(kShippedVariants), std::end(kShippedVariants));
        } else {
          const std::string& layout = cli.get_string("layout");
          const std::string& schedule = cli.get_string("schedule");
          if (layout != "linear" && layout != "hashed") {
            std::cerr << "fft_lint: unknown --layout '" << layout << "'\n";
            return 2;
          }
          if (schedule != "coarse" && schedule != "fine" && schedule != "guided") {
            std::cerr << "fft_lint: unknown --schedule '" << schedule << "'\n";
            return 2;
          }
          variants.push_back(
              {"", schedule == "coarse" ? analysis::Schedule::kBarrier
                                        : analysis::Schedule::kCounters,
               layout == "hashed" ? fft::TwiddleLayout::kBitReversed
                                  : fft::TwiddleLayout::kLinear});
        }
        const fft::FftPlan plan(n, radix_log2);
        for (const VariantSpec& v : variants) {
          const std::string name =
              v.name && *v.name ? v.name
                                : cli.get_string("schedule") + "/" +
                                      cli.get_string("layout");
          reports.push_back(
              analysis::analyze_plan(plan, v.layout, v.schedule, opts, name));
        }
        if (want_pipeline)
          reports.push_back(analysis::analyze_pipeline(
              analysis::build_classic_pipeline(plan, build), pipe_opts));
      } else if (kind == "four-step") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_four_step_pipeline(n, radix_log2, build),
            pipe_opts));
      } else if (kind == "hierarchical") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_hierarchical_pipeline(n, radix_log2, build),
            pipe_opts));
      } else if (kind == "batch") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_batch_pipeline(
                fft::FftPlan(n, radix_log2),
                static_cast<std::uint64_t>(cli.get_int("batch")), build),
            pipe_opts));
      } else if (kind == "fft2d") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_fft2d_pipeline(
                std::uint64_t{1} << cli.get_int("rows-log2"),
                std::uint64_t{1} << cli.get_int("cols-log2"), radix_log2,
                build),
            pipe_opts));
      } else if (kind == "real") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_real_fft_pipeline(n, radix_log2, build),
            pipe_opts));
      } else if (kind == "mixed-radix") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_mixed_radix_pipeline(n, build), pipe_opts));
      } else if (kind == "bluestein") {
        reports.push_back(analysis::analyze_pipeline(
            analysis::build_bluestein_pipeline(n, radix_log2, build),
            pipe_opts));
      } else {
        std::cerr << "fft_lint: unknown --plan-kind '" << kind << "'\n";
        return 2;
      }
    }
  } catch (const std::exception& e) {
    std::cerr << "fft_lint: " << e.what() << '\n';
    return 2;
  }

  std::string cache_stats_line;
  if (cli.flag("cache-stats")) {
    // Tie the static picture to the runtime one: run every linted shape
    // through a private executor (serial path — the cache behaves
    // identically) at both precisions, then report what the plan cache
    // retained. Distinct precisions are distinct entries by design, so
    // `entries` should read 2x the unique (n, radix) shapes unless the
    // LRU had to evict.
    try {
      fft::FftExecutor exec;
      fft::HostFftOptions hopts;
      hopts.workers = 1;
      std::vector<std::pair<std::uint64_t, unsigned>> shapes;
      for (const analysis::AnalysisReport& r : reports)
        shapes.emplace_back(r.n, r.radix_log2);
      std::sort(shapes.begin(), shapes.end());
      shapes.erase(std::unique(shapes.begin(), shapes.end()), shapes.end());
      std::vector<fft::cplx> buf64;
      std::vector<fft::cplx32> buf32;
      for (const auto& [shape_n, shape_radix] : shapes) {
        hopts.radix_log2 = fft::validate_fft_shape(shape_n, shape_radix, true);
        buf64.assign(shape_n, fft::cplx{});
        exec.forward(std::span<fft::cplx>(buf64), hopts);
        buf32.assign(shape_n, fft::cplx32{});
        exec.forward(std::span<fft::cplx32>(buf32), hopts);
      }
      const fft::ExecutorStats st = exec.stats();
      std::ostringstream line;
      line << "plan cache: hits=" << st.cache.hits
           << " misses=" << st.cache.misses
           << " evictions=" << st.cache.evictions
           << " entries=" << st.cache.entries << " (" << shapes.size()
           << " shapes x 2 precisions)\n";
      cache_stats_line = line.str();
    } catch (const std::exception& e) {
      std::cerr << "fft_lint: --cache-stats execution failed: " << e.what()
                << '\n';
      return 2;
    }
  }

  std::string json_all = "[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (cli.flag("json") || !cli.get_string("json-file").empty()) {
      if (i) json_all += ',';
      json_all += reports[i].to_json();
    }
    if (!cli.flag("json")) print_human(reports[i]);
  }
  json_all += ']';

  // After the reports in human mode; on stderr in JSON mode so stdout
  // stays a single parseable document.
  if (!cache_stats_line.empty())
    (cli.flag("json") ? std::cerr : std::cout) << cache_stats_line;
  if (cli.flag("json")) std::cout << json_all << '\n';
  if (!cli.get_string("json-file").empty()) {
    std::ofstream out(cli.get_string("json-file"));
    if (!out) {
      std::cerr << "fft_lint: cannot write " << cli.get_string("json-file") << '\n';
      return 2;
    }
    out << json_all << '\n';
  }
  return classify_exit(reports);
}
