// fft_lint — static plan verifier and schedule race lint.
//
// Checks an FFT plan's codelet graph (acyclicity, counter thresholds,
// orphans, deadlock-freedom), proves the schedule race-free from the
// footprint algebra, and lints the DRAM bank balance of the chosen
// twiddle layout — all without executing a single codelet. --cache-sets
// adds the host-side report mode: the per-stage stride -> cache-set
// histogram that flags stages whose chain walk folds onto few sets (the
// conflict-miss regime the four-step path avoids). Exit status is 0 when
// no check reports an error (bank and cache-set findings are warnings
// unless --strict-banks / --strict-sets), 1 otherwise, 2 on usage errors.
//
//   fft_lint --logn=12 --layout=linear --schedule=fine --json
//   fft_lint --all-variants            # lint every shipped Table-I variant
//   fft_lint --logn=18 --cache-sets    # large-N cache-set conflict report

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "util/cli.hpp"

using namespace c64fft;

namespace {

struct VariantSpec {
  const char* name;
  analysis::Schedule schedule;
  fft::TwiddleLayout layout;
};

// The shipped plan variants of the paper's Table I: the three schedulers,
// each with the linear and the bit-reversed ("hashed") twiddle layout.
constexpr VariantSpec kShippedVariants[] = {
    {"coarse/linear", analysis::Schedule::kBarrier, fft::TwiddleLayout::kLinear},
    {"coarse/hashed", analysis::Schedule::kBarrier, fft::TwiddleLayout::kBitReversed},
    {"fine/linear", analysis::Schedule::kCounters, fft::TwiddleLayout::kLinear},
    {"fine/hashed", analysis::Schedule::kCounters, fft::TwiddleLayout::kBitReversed},
    {"guided/linear", analysis::Schedule::kCounters, fft::TwiddleLayout::kLinear},
    {"guided/hashed", analysis::Schedule::kCounters, fft::TwiddleLayout::kBitReversed},
};

void print_human(const analysis::AnalysisReport& report) {
  std::cout << report.plan_name << ": n=" << report.n << " radix=2^" << report.radix_log2
            << " stages=" << report.stages << " codelets=" << report.codelets << '\n';
  for (const auto& check : report.checks) {
    std::cout << "  [" << check.status << "] " << check.name;
    if (!check.note.empty()) std::cout << " (" << check.note << ')';
    std::cout << '\n';
    for (const auto& d : check.diagnostics)
      std::cout << "    " << to_string(d.severity) << " [" << d.code << "] " << d.message
                << '\n';
  }
  std::cout << "  => " << report.status() << " (" << report.errors() << " error(s), "
            << report.warnings() << " warning(s))\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli(
      "fft_lint — static plan verifier, schedule race lint and DRAM "
      "bank-balance lint");
  cli.add_int("logn", 12, "log2 of the FFT size to lint");
  cli.add_int("radix-log2", 6, "log2 of the codelet radix (paper: 6)");
  cli.add_string("layout", "linear", "twiddle layout: linear | hashed");
  cli.add_string("schedule", "fine", "scheduler: coarse | fine | guided");
  cli.add_int("banks", 4, "DRAM banks of the modelled chip");
  cli.add_int("interleave", 64, "bank interleave in bytes");
  cli.add_int("element-bytes", 0,
              "complex element size for the byte-level lints: 16 (f64), 8 "
              "(f32), or 0 to use the model's width");
  cli.add_double("imbalance-threshold", 1.5, "flag max/mean bank ratio above this");
  cli.add_flag("strict-banks", "report bank findings as errors, not warnings");
  cli.add_flag("cache-sets",
               "also report host cache-set conflicts (stride -> set-index "
               "histogram of the data stream, per stage)");
  cli.add_int("sets", 64, "cache sets of the modelled host cache");
  cli.add_int("cache-line", 64, "cache line size in bytes");
  cli.add_double("set-coverage", 0.5,
                 "flag stages touching less than this fraction of the sets");
  cli.add_flag("strict-sets", "report cache-set findings as errors, not warnings");
  cli.add_flag("all-variants", "lint every shipped Table-I plan variant");
  cli.add_flag("json", "emit the JSON report on stdout");
  cli.add_string("json-file", "", "also write the JSON report to this path");

  try {
    if (!cli.parse(argc, argv)) return 0;
  } catch (const std::exception& e) {
    std::cerr << "fft_lint: " << e.what() << '\n';
    return 2;
  }

  const int elem_bytes = cli.get_int("element-bytes");
  if (elem_bytes != 0 && elem_bytes != 8 && elem_bytes != 16) {
    std::cerr << "fft_lint: --element-bytes must be 8, 16 or 0 (model width)\n";
    return 2;
  }

  analysis::AnalysisOptions opts;
  opts.banks.banks = static_cast<unsigned>(cli.get_int("banks"));
  opts.banks.interleave_bytes = static_cast<unsigned>(cli.get_int("interleave"));
  opts.banks.element_bytes = static_cast<unsigned>(elem_bytes);
  opts.banks.imbalance_threshold = cli.get_double("imbalance-threshold");
  opts.banks.strict = cli.flag("strict-banks");
  opts.check_cache_sets = cli.flag("cache-sets");
  opts.cache_sets.sets = static_cast<unsigned>(cli.get_int("sets"));
  opts.cache_sets.line_bytes = static_cast<unsigned>(cli.get_int("cache-line"));
  opts.cache_sets.element_bytes = static_cast<unsigned>(elem_bytes);
  opts.cache_sets.min_set_coverage = cli.get_double("set-coverage");
  opts.cache_sets.strict = cli.flag("strict-sets");

  const std::uint64_t n = std::uint64_t{1} << cli.get_int("logn");
  const auto radix_log2 = static_cast<unsigned>(cli.get_int("radix-log2"));

  std::vector<VariantSpec> variants;
  if (cli.flag("all-variants")) {
    variants.assign(std::begin(kShippedVariants), std::end(kShippedVariants));
  } else {
    const std::string& layout = cli.get_string("layout");
    const std::string& schedule = cli.get_string("schedule");
    if (layout != "linear" && layout != "hashed") {
      std::cerr << "fft_lint: unknown --layout '" << layout << "'\n";
      return 2;
    }
    if (schedule != "coarse" && schedule != "fine" && schedule != "guided") {
      std::cerr << "fft_lint: unknown --schedule '" << schedule << "'\n";
      return 2;
    }
    // name left empty: the loop below derives it from the CLI strings.
    variants.push_back(
        {"", schedule == "coarse" ? analysis::Schedule::kBarrier : analysis::Schedule::kCounters,
         layout == "hashed" ? fft::TwiddleLayout::kBitReversed : fft::TwiddleLayout::kLinear});
  }

  bool any_error = false;
  std::string json_all = "[";
  bool first = true;
  for (const VariantSpec& v : variants) {
    std::string name = v.name && *v.name
                           ? v.name
                           : cli.get_string("schedule") + "/" + cli.get_string("layout");
    analysis::AnalysisReport report;
    try {
      const fft::FftPlan plan(n, radix_log2);
      report = analysis::analyze_plan(plan, v.layout, v.schedule, opts, name);
    } catch (const std::exception& e) {
      std::cerr << "fft_lint: " << name << ": " << e.what() << '\n';
      return 2;
    }
    any_error |= !report.passed();
    if (cli.flag("json") || !cli.get_string("json-file").empty()) {
      if (!first) json_all += ',';
      first = false;
      json_all += report.to_json();
    }
    if (!cli.flag("json")) print_human(report);
  }
  json_all += ']';

  if (cli.flag("json")) std::cout << json_all << '\n';
  if (!cli.get_string("json-file").empty()) {
    std::ofstream out(cli.get_string("json-file"));
    if (!out) {
      std::cerr << "fft_lint: cannot write " << cli.get_string("json-file") << '\n';
      return 2;
    }
    out << json_all << '\n';
  }
  return any_error ? 1 : 0;
}
