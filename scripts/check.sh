#!/usr/bin/env bash
# One-shot correctness gate: tier-1 tests in the normal build, then again
# under ASan(+LSan) and UBSan. Usage:
#
#   scripts/check.sh            # release-ish build + both sanitizer builds
#   scripts/check.sh --fast     # normal build only (skip sanitizers)
#
# Each configuration builds into its own tree (build/, build-asan/,
# build-ubsan/) so the sanitizer runs never dirty the main build and
# incremental re-runs stay fast. Exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run_config() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

echo "== tier-1 (normal build) =="
run_config build

if [[ $fast -eq 0 ]]; then
  echo "== tier-1 under ASan + LSan =="
  run_config build-asan -DC64FFT_ASAN=ON
  echo "== tier-1 under UBSan =="
  run_config build-ubsan -DC64FFT_UBSAN=ON
  # The f32/f64 numeric paths are where narrowing and float UB would hide;
  # re-run the precision label explicitly so its pass/fail is visible even
  # when skimming the full-suite output above.
  echo "== precision label under UBSan =="
  ctest --test-dir build-ubsan -L precision --output-on-failure
fi

echo "check.sh: all configurations passed"
