#!/usr/bin/env bash
# One-shot correctness gate: tier-1 tests in the normal build, then again
# under ASan(+LSan), UBSan and TSan. Usage:
#
#   scripts/check.sh            # release-ish build + all sanitizer builds
#   scripts/check.sh --fast     # normal build only (skip sanitizers)
#
# Each configuration builds into its own tree (build/, build-asan/,
# build-ubsan/, build-tsan/) so the sanitizer runs never dirty the main
# build and incremental re-runs stay fast. Exits non-zero on the first
# failure.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

run_config() {
  local dir="$1"; shift
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j
  ctest --test-dir "$dir" --output-on-failure -j
}

echo "== tier-1 (normal build) =="
run_config build

if [[ $fast -eq 0 ]]; then
  echo "== tier-1 under ASan + LSan =="
  run_config build-asan -DC64FFT_ASAN=ON
  echo "== tier-1 under UBSan =="
  run_config build-ubsan -DC64FFT_UBSAN=ON
  # The f32/f64 numeric paths are where narrowing and float UB would hide;
  # re-run the precision label explicitly so its pass/fail is visible even
  # when skimming the full-suite output above.
  echo "== precision label under UBSan =="
  ctest --test-dir build-ubsan -L precision --output-on-failure
  # TSan watches the concurrency surface: the work-stealing deques, the
  # runtime's phase/counter machinery, the executor's batched dispatch and
  # the hierarchical tile pipeline (dependency-counted cross-stage pushes
  # are exactly where a missed release order would race). Only the
  # threaded tests run here — TSan is slow, and the numeric tests add no
  # thread interleavings it could observe. (ASan and TSan are mutually
  # exclusive instrumentations, hence the separate tree.)
  echo "== concurrency tests under TSan =="
  cmake -B build-tsan -S . -DC64FFT_TSAN=ON >/dev/null
  cmake --build build-tsan -j
  ctest --test-dir build-tsan --output-on-failure -j \
    -R 'test_executor|test_ws_deque|test_ws_runtime|test_host_runtime|test_serve|test_hierarchical'
fi

echo "check.sh: all configurations passed"
