# Empty compiler generated dependencies file for contention_explorer.
# This may be replaced when dependencies are built.
