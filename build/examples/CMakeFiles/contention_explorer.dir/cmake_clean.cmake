file(REMOVE_RECURSE
  "CMakeFiles/contention_explorer.dir/contention_explorer.cpp.o"
  "CMakeFiles/contention_explorer.dir/contention_explorer.cpp.o.d"
  "contention_explorer"
  "contention_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contention_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
