# Empty dependencies file for fft2d_filter.
# This may be replaced when dependencies are built.
