file(REMOVE_RECURSE
  "CMakeFiles/fft2d_filter.dir/fft2d_filter.cpp.o"
  "CMakeFiles/fft2d_filter.dir/fft2d_filter.cpp.o.d"
  "fft2d_filter"
  "fft2d_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
