file(REMOVE_RECURSE
  "CMakeFiles/theory_peak.dir/theory_peak.cpp.o"
  "CMakeFiles/theory_peak.dir/theory_peak.cpp.o.d"
  "theory_peak"
  "theory_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theory_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
