# Empty dependencies file for theory_peak.
# This may be replaced when dependencies are built.
