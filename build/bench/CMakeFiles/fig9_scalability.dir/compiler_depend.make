# Empty compiler generated dependencies file for fig9_scalability.
# This may be replaced when dependencies are built.
