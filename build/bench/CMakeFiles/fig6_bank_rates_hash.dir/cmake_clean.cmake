file(REMOVE_RECURSE
  "CMakeFiles/fig6_bank_rates_hash.dir/fig6_bank_rates_hash.cpp.o"
  "CMakeFiles/fig6_bank_rates_hash.dir/fig6_bank_rates_hash.cpp.o.d"
  "fig6_bank_rates_hash"
  "fig6_bank_rates_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bank_rates_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
