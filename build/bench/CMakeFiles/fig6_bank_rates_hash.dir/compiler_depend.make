# Empty compiler generated dependencies file for fig6_bank_rates_hash.
# This may be replaced when dependencies are built.
