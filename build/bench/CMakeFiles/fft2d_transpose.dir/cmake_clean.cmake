file(REMOVE_RECURSE
  "CMakeFiles/fft2d_transpose.dir/fft2d_transpose.cpp.o"
  "CMakeFiles/fft2d_transpose.dir/fft2d_transpose.cpp.o.d"
  "fft2d_transpose"
  "fft2d_transpose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft2d_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
