# Empty compiler generated dependencies file for fft2d_transpose.
# This may be replaced when dependencies are built.
