file(REMOVE_RECURSE
  "CMakeFiles/fig8_input_size.dir/fig8_input_size.cpp.o"
  "CMakeFiles/fig8_input_size.dir/fig8_input_size.cpp.o.d"
  "fig8_input_size"
  "fig8_input_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
