# Empty dependencies file for fig8_input_size.
# This may be replaced when dependencies are built.
