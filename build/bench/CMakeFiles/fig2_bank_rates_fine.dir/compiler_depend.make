# Empty compiler generated dependencies file for fig2_bank_rates_fine.
# This may be replaced when dependencies are built.
