file(REMOVE_RECURSE
  "CMakeFiles/fig2_bank_rates_fine.dir/fig2_bank_rates_fine.cpp.o"
  "CMakeFiles/fig2_bank_rates_fine.dir/fig2_bank_rates_fine.cpp.o.d"
  "fig2_bank_rates_fine"
  "fig2_bank_rates_fine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bank_rates_fine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
