file(REMOVE_RECURSE
  "CMakeFiles/ablation_model.dir/ablation_model.cpp.o"
  "CMakeFiles/ablation_model.dir/ablation_model.cpp.o.d"
  "ablation_model"
  "ablation_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
