# Empty compiler generated dependencies file for table1_versions.
# This may be replaced when dependencies are built.
