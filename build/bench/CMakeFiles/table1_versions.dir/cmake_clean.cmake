file(REMOVE_RECURSE
  "CMakeFiles/table1_versions.dir/table1_versions.cpp.o"
  "CMakeFiles/table1_versions.dir/table1_versions.cpp.o.d"
  "table1_versions"
  "table1_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
