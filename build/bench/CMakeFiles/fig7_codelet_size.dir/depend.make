# Empty dependencies file for fig7_codelet_size.
# This may be replaced when dependencies are built.
