file(REMOVE_RECURSE
  "CMakeFiles/fig1_bank_rates_coarse.dir/fig1_bank_rates_coarse.cpp.o"
  "CMakeFiles/fig1_bank_rates_coarse.dir/fig1_bank_rates_coarse.cpp.o.d"
  "fig1_bank_rates_coarse"
  "fig1_bank_rates_coarse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bank_rates_coarse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
