# Empty dependencies file for fig1_bank_rates_coarse.
# This may be replaced when dependencies are built.
