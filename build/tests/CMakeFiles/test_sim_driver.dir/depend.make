# Empty dependencies file for test_sim_driver.
# This may be replaced when dependencies are built.
