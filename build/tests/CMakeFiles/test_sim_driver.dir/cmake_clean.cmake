file(REMOVE_RECURSE
  "CMakeFiles/test_sim_driver.dir/test_sim_driver.cpp.o"
  "CMakeFiles/test_sim_driver.dir/test_sim_driver.cpp.o.d"
  "test_sim_driver"
  "test_sim_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
