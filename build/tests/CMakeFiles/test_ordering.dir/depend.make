# Empty dependencies file for test_ordering.
# This may be replaced when dependencies are built.
