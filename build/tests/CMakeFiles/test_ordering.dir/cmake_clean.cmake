file(REMOVE_RECURSE
  "CMakeFiles/test_ordering.dir/test_ordering.cpp.o"
  "CMakeFiles/test_ordering.dir/test_ordering.cpp.o.d"
  "test_ordering"
  "test_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
