file(REMOVE_RECURSE
  "CMakeFiles/test_peak_model.dir/test_peak_model.cpp.o"
  "CMakeFiles/test_peak_model.dir/test_peak_model.cpp.o.d"
  "test_peak_model"
  "test_peak_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peak_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
