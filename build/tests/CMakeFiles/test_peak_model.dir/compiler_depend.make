# Empty compiler generated dependencies file for test_peak_model.
# This may be replaced when dependencies are built.
