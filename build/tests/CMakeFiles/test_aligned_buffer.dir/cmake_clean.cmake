file(REMOVE_RECURSE
  "CMakeFiles/test_aligned_buffer.dir/test_aligned_buffer.cpp.o"
  "CMakeFiles/test_aligned_buffer.dir/test_aligned_buffer.cpp.o.d"
  "test_aligned_buffer"
  "test_aligned_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aligned_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
