# Empty dependencies file for test_aligned_buffer.
# This may be replaced when dependencies are built.
