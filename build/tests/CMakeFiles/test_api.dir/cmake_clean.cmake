file(REMOVE_RECURSE
  "CMakeFiles/test_api.dir/test_api.cpp.o"
  "CMakeFiles/test_api.dir/test_api.cpp.o.d"
  "test_api"
  "test_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
