# Empty compiler generated dependencies file for test_signal.
# This may be replaced when dependencies are built.
