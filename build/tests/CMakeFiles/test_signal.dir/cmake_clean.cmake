file(REMOVE_RECURSE
  "CMakeFiles/test_signal.dir/test_signal.cpp.o"
  "CMakeFiles/test_signal.dir/test_signal.cpp.o.d"
  "test_signal"
  "test_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
