# Empty dependencies file for test_tuning.
# This may be replaced when dependencies are built.
