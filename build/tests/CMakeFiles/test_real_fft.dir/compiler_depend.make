# Empty compiler generated dependencies file for test_real_fft.
# This may be replaced when dependencies are built.
