file(REMOVE_RECURSE
  "CMakeFiles/test_real_fft.dir/test_real_fft.cpp.o"
  "CMakeFiles/test_real_fft.dir/test_real_fft.cpp.o.d"
  "test_real_fft"
  "test_real_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_real_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
