file(REMOVE_RECURSE
  "CMakeFiles/test_stockham.dir/test_stockham.cpp.o"
  "CMakeFiles/test_stockham.dir/test_stockham.cpp.o.d"
  "test_stockham"
  "test_stockham.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stockham.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
