# Empty compiler generated dependencies file for test_stockham.
# This may be replaced when dependencies are built.
