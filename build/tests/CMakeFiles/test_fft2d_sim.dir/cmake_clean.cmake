file(REMOVE_RECURSE
  "CMakeFiles/test_fft2d_sim.dir/test_fft2d_sim.cpp.o"
  "CMakeFiles/test_fft2d_sim.dir/test_fft2d_sim.cpp.o.d"
  "test_fft2d_sim"
  "test_fft2d_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft2d_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
