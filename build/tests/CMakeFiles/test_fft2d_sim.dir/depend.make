# Empty dependencies file for test_fft2d_sim.
# This may be replaced when dependencies are built.
