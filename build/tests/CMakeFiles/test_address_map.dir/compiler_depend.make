# Empty compiler generated dependencies file for test_address_map.
# This may be replaced when dependencies are built.
