file(REMOVE_RECURSE
  "CMakeFiles/test_footprint.dir/test_footprint.cpp.o"
  "CMakeFiles/test_footprint.dir/test_footprint.cpp.o.d"
  "test_footprint"
  "test_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
