file(REMOVE_RECURSE
  "CMakeFiles/test_plan_deps.dir/test_plan_deps.cpp.o"
  "CMakeFiles/test_plan_deps.dir/test_plan_deps.cpp.o.d"
  "test_plan_deps"
  "test_plan_deps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_deps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
