# Empty compiler generated dependencies file for test_plan_deps.
# This may be replaced when dependencies are built.
