# Empty dependencies file for test_dep_counter.
# This may be replaced when dependencies are built.
