file(REMOVE_RECURSE
  "CMakeFiles/test_dep_counter.dir/test_dep_counter.cpp.o"
  "CMakeFiles/test_dep_counter.dir/test_dep_counter.cpp.o.d"
  "test_dep_counter"
  "test_dep_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dep_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
