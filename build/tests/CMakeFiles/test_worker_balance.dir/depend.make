# Empty dependencies file for test_worker_balance.
# This may be replaced when dependencies are built.
