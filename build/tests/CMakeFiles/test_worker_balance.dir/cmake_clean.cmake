file(REMOVE_RECURSE
  "CMakeFiles/test_worker_balance.dir/test_worker_balance.cpp.o"
  "CMakeFiles/test_worker_balance.dir/test_worker_balance.cpp.o.d"
  "test_worker_balance"
  "test_worker_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_worker_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
