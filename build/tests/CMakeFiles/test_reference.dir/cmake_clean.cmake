file(REMOVE_RECURSE
  "CMakeFiles/test_reference.dir/test_reference.cpp.o"
  "CMakeFiles/test_reference.dir/test_reference.cpp.o.d"
  "test_reference"
  "test_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
