# Empty compiler generated dependencies file for test_engine_stress.
# This may be replaced when dependencies are built.
