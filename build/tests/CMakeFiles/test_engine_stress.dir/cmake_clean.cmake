file(REMOVE_RECURSE
  "CMakeFiles/test_engine_stress.dir/test_engine_stress.cpp.o"
  "CMakeFiles/test_engine_stress.dir/test_engine_stress.cpp.o.d"
  "test_engine_stress"
  "test_engine_stress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
