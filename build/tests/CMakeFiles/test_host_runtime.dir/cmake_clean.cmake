file(REMOVE_RECURSE
  "CMakeFiles/test_host_runtime.dir/test_host_runtime.cpp.o"
  "CMakeFiles/test_host_runtime.dir/test_host_runtime.cpp.o.d"
  "test_host_runtime"
  "test_host_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_host_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
