# Empty dependencies file for test_host_runtime.
# This may be replaced when dependencies are built.
