# Empty compiler generated dependencies file for test_bit_reversal.
# This may be replaced when dependencies are built.
