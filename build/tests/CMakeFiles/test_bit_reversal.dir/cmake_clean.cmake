file(REMOVE_RECURSE
  "CMakeFiles/test_bit_reversal.dir/test_bit_reversal.cpp.o"
  "CMakeFiles/test_bit_reversal.dir/test_bit_reversal.cpp.o.d"
  "test_bit_reversal"
  "test_bit_reversal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_reversal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
