# Empty compiler generated dependencies file for test_plan_stats.
# This may be replaced when dependencies are built.
