file(REMOVE_RECURSE
  "CMakeFiles/test_plan_stats.dir/test_plan_stats.cpp.o"
  "CMakeFiles/test_plan_stats.dir/test_plan_stats.cpp.o.d"
  "test_plan_stats"
  "test_plan_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
