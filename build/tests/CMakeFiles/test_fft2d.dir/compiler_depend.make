# Empty compiler generated dependencies file for test_fft2d.
# This may be replaced when dependencies are built.
