file(REMOVE_RECURSE
  "CMakeFiles/test_fft2d.dir/test_fft2d.cpp.o"
  "CMakeFiles/test_fft2d.dir/test_fft2d.cpp.o.d"
  "test_fft2d"
  "test_fft2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fft2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
