file(REMOVE_RECURSE
  "CMakeFiles/test_bit_ops.dir/test_bit_ops.cpp.o"
  "CMakeFiles/test_bit_ops.dir/test_bit_ops.cpp.o.d"
  "test_bit_ops"
  "test_bit_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
