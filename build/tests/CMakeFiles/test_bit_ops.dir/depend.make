# Empty dependencies file for test_bit_ops.
# This may be replaced when dependencies are built.
