# Empty compiler generated dependencies file for test_twiddle.
# This may be replaced when dependencies are built.
