
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_twiddle.cpp" "tests/CMakeFiles/test_twiddle.dir/test_twiddle.cpp.o" "gcc" "tests/CMakeFiles/test_twiddle.dir/test_twiddle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simfft/CMakeFiles/c64fft_simfft.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/c64fft_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/c64/CMakeFiles/c64fft_c64.dir/DependInfo.cmake"
  "/root/repo/build/src/codelet/CMakeFiles/c64fft_codelet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/c64fft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
