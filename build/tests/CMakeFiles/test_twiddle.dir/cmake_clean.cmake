file(REMOVE_RECURSE
  "CMakeFiles/test_twiddle.dir/test_twiddle.cpp.o"
  "CMakeFiles/test_twiddle.dir/test_twiddle.cpp.o.d"
  "test_twiddle"
  "test_twiddle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twiddle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
