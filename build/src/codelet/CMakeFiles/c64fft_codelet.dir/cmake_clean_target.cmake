file(REMOVE_RECURSE
  "libc64fft_codelet.a"
)
