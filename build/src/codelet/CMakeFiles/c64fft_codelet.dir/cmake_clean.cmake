file(REMOVE_RECURSE
  "CMakeFiles/c64fft_codelet.dir/graph.cpp.o"
  "CMakeFiles/c64fft_codelet.dir/graph.cpp.o.d"
  "CMakeFiles/c64fft_codelet.dir/host_runtime.cpp.o"
  "CMakeFiles/c64fft_codelet.dir/host_runtime.cpp.o.d"
  "libc64fft_codelet.a"
  "libc64fft_codelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c64fft_codelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
