
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codelet/graph.cpp" "src/codelet/CMakeFiles/c64fft_codelet.dir/graph.cpp.o" "gcc" "src/codelet/CMakeFiles/c64fft_codelet.dir/graph.cpp.o.d"
  "/root/repo/src/codelet/host_runtime.cpp" "src/codelet/CMakeFiles/c64fft_codelet.dir/host_runtime.cpp.o" "gcc" "src/codelet/CMakeFiles/c64fft_codelet.dir/host_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c64fft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
