# Empty dependencies file for c64fft_codelet.
# This may be replaced when dependencies are built.
