
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fft/api.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/api.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/api.cpp.o.d"
  "/root/repo/src/fft/bit_reversal.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/bit_reversal.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/bit_reversal.cpp.o.d"
  "/root/repo/src/fft/fft2d.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/fft2d.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/fft2d.cpp.o.d"
  "/root/repo/src/fft/kernel.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/kernel.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/kernel.cpp.o.d"
  "/root/repo/src/fft/ordering.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/ordering.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/ordering.cpp.o.d"
  "/root/repo/src/fft/plan.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/plan.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/plan.cpp.o.d"
  "/root/repo/src/fft/plan_stats.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/plan_stats.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/plan_stats.cpp.o.d"
  "/root/repo/src/fft/real_fft.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/real_fft.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/real_fft.cpp.o.d"
  "/root/repo/src/fft/reference.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/reference.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/reference.cpp.o.d"
  "/root/repo/src/fft/stockham.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/stockham.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/stockham.cpp.o.d"
  "/root/repo/src/fft/twiddle.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/twiddle.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/twiddle.cpp.o.d"
  "/root/repo/src/fft/variants.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/variants.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/variants.cpp.o.d"
  "/root/repo/src/fft/window.cpp" "src/fft/CMakeFiles/c64fft_fft.dir/window.cpp.o" "gcc" "src/fft/CMakeFiles/c64fft_fft.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c64fft_util.dir/DependInfo.cmake"
  "/root/repo/build/src/codelet/CMakeFiles/c64fft_codelet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
