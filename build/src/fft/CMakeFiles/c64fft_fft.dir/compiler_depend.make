# Empty compiler generated dependencies file for c64fft_fft.
# This may be replaced when dependencies are built.
