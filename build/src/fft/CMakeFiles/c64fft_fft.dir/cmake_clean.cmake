file(REMOVE_RECURSE
  "CMakeFiles/c64fft_fft.dir/api.cpp.o"
  "CMakeFiles/c64fft_fft.dir/api.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/bit_reversal.cpp.o"
  "CMakeFiles/c64fft_fft.dir/bit_reversal.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/fft2d.cpp.o"
  "CMakeFiles/c64fft_fft.dir/fft2d.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/kernel.cpp.o"
  "CMakeFiles/c64fft_fft.dir/kernel.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/ordering.cpp.o"
  "CMakeFiles/c64fft_fft.dir/ordering.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/plan.cpp.o"
  "CMakeFiles/c64fft_fft.dir/plan.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/plan_stats.cpp.o"
  "CMakeFiles/c64fft_fft.dir/plan_stats.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/real_fft.cpp.o"
  "CMakeFiles/c64fft_fft.dir/real_fft.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/reference.cpp.o"
  "CMakeFiles/c64fft_fft.dir/reference.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/stockham.cpp.o"
  "CMakeFiles/c64fft_fft.dir/stockham.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/twiddle.cpp.o"
  "CMakeFiles/c64fft_fft.dir/twiddle.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/variants.cpp.o"
  "CMakeFiles/c64fft_fft.dir/variants.cpp.o.d"
  "CMakeFiles/c64fft_fft.dir/window.cpp.o"
  "CMakeFiles/c64fft_fft.dir/window.cpp.o.d"
  "libc64fft_fft.a"
  "libc64fft_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c64fft_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
