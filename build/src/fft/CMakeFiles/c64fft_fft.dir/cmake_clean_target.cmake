file(REMOVE_RECURSE
  "libc64fft_fft.a"
)
