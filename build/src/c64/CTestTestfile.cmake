# CMake generated Testfile for 
# Source directory: /root/repo/src/c64
# Build directory: /root/repo/build/src/c64
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
