
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/c64/engine.cpp" "src/c64/CMakeFiles/c64fft_c64.dir/engine.cpp.o" "gcc" "src/c64/CMakeFiles/c64fft_c64.dir/engine.cpp.o.d"
  "/root/repo/src/c64/peak_model.cpp" "src/c64/CMakeFiles/c64fft_c64.dir/peak_model.cpp.o" "gcc" "src/c64/CMakeFiles/c64fft_c64.dir/peak_model.cpp.o.d"
  "/root/repo/src/c64/trace.cpp" "src/c64/CMakeFiles/c64fft_c64.dir/trace.cpp.o" "gcc" "src/c64/CMakeFiles/c64fft_c64.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/c64fft_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
