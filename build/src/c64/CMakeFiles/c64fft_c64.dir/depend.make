# Empty dependencies file for c64fft_c64.
# This may be replaced when dependencies are built.
