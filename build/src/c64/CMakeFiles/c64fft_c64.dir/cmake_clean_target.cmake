file(REMOVE_RECURSE
  "libc64fft_c64.a"
)
