file(REMOVE_RECURSE
  "CMakeFiles/c64fft_c64.dir/engine.cpp.o"
  "CMakeFiles/c64fft_c64.dir/engine.cpp.o.d"
  "CMakeFiles/c64fft_c64.dir/peak_model.cpp.o"
  "CMakeFiles/c64fft_c64.dir/peak_model.cpp.o.d"
  "CMakeFiles/c64fft_c64.dir/trace.cpp.o"
  "CMakeFiles/c64fft_c64.dir/trace.cpp.o.d"
  "libc64fft_c64.a"
  "libc64fft_c64.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c64fft_c64.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
