file(REMOVE_RECURSE
  "libc64fft_simfft.a"
)
