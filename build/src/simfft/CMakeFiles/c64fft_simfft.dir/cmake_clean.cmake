file(REMOVE_RECURSE
  "CMakeFiles/c64fft_simfft.dir/analytic.cpp.o"
  "CMakeFiles/c64fft_simfft.dir/analytic.cpp.o.d"
  "CMakeFiles/c64fft_simfft.dir/experiment.cpp.o"
  "CMakeFiles/c64fft_simfft.dir/experiment.cpp.o.d"
  "CMakeFiles/c64fft_simfft.dir/fft2d_sim.cpp.o"
  "CMakeFiles/c64fft_simfft.dir/fft2d_sim.cpp.o.d"
  "CMakeFiles/c64fft_simfft.dir/footprint.cpp.o"
  "CMakeFiles/c64fft_simfft.dir/footprint.cpp.o.d"
  "CMakeFiles/c64fft_simfft.dir/sim_driver.cpp.o"
  "CMakeFiles/c64fft_simfft.dir/sim_driver.cpp.o.d"
  "CMakeFiles/c64fft_simfft.dir/tuning.cpp.o"
  "CMakeFiles/c64fft_simfft.dir/tuning.cpp.o.d"
  "libc64fft_simfft.a"
  "libc64fft_simfft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c64fft_simfft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
