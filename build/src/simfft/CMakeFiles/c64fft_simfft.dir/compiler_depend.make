# Empty compiler generated dependencies file for c64fft_simfft.
# This may be replaced when dependencies are built.
