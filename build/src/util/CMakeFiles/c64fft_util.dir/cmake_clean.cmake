file(REMOVE_RECURSE
  "CMakeFiles/c64fft_util.dir/cli.cpp.o"
  "CMakeFiles/c64fft_util.dir/cli.cpp.o.d"
  "CMakeFiles/c64fft_util.dir/signal.cpp.o"
  "CMakeFiles/c64fft_util.dir/signal.cpp.o.d"
  "CMakeFiles/c64fft_util.dir/stats.cpp.o"
  "CMakeFiles/c64fft_util.dir/stats.cpp.o.d"
  "CMakeFiles/c64fft_util.dir/table.cpp.o"
  "CMakeFiles/c64fft_util.dir/table.cpp.o.d"
  "CMakeFiles/c64fft_util.dir/timeseries.cpp.o"
  "CMakeFiles/c64fft_util.dir/timeseries.cpp.o.d"
  "libc64fft_util.a"
  "libc64fft_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/c64fft_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
