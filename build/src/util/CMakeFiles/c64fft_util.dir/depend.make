# Empty dependencies file for c64fft_util.
# This may be replaced when dependencies are built.
