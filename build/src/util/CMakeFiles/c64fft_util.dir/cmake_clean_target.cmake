file(REMOVE_RECURSE
  "libc64fft_util.a"
)
